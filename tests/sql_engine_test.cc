// Tests for the SQL/CTE executor, in both execution modes
// (parameterized), including recursive CTE working-table semantics.

#include <gtest/gtest.h>

#include "dlir/parser.h"
#include "engine/sql/executor.h"
#include "sqir/dlir_to_sqir.h"

namespace raqlet::engine {
namespace {

dlir::Program Parse(const std::string& text) {
  auto program = dlir::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

sqir::SqirProgram Translate(const std::string& text) {
  auto sqir = sqir::TranslateToSqir(Parse(text));
  EXPECT_TRUE(sqir.ok()) << sqir.status().ToString();
  return std::move(sqir).value();
}

Database MakeGraphDb(const std::vector<std::pair<int, int>>& edges) {
  Database db;
  RelationSchema s;
  s.name = "edge";
  s.columns = {{"x", ValueType::kNumber}, {"y", ValueType::kNumber}};
  Relation* rel = *db.CreateRelation(s);
  for (auto [x, y] : edges) rel->Insert({Value::Number(x), Value::Number(y)});
  return db;
}

class SqlEngineModeTest : public ::testing::TestWithParam<SqlMode> {
 protected:
  SqlEngine Engine() const {
    SqlOptions options;
    options.mode = GetParam();
    return SqlEngine(options);
  }
};

TEST_P(SqlEngineModeTest, SimpleJoinWithConstant) {
  Database db = MakeGraphDb({{1, 2}, {2, 3}, {1, 3}});
  auto sqir = Translate(R"(
.decl edge(x: number, y: number)
.input edge
.decl out(x: number, y: number)
.output out
out(x, y) :- edge(x, y), x = 1.
)");
  auto result = Engine().Run(sqir, &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ToStringSet(db.symbols()),
            (std::set<std::string>{"(1, 2)", "(1, 3)"}));
}

TEST_P(SqlEngineModeTest, TwoHopJoin) {
  Database db = MakeGraphDb({{1, 2}, {2, 3}, {3, 4}});
  auto sqir = Translate(R"(
.decl edge(x: number, y: number)
.input edge
.decl out(x: number, z: number)
.output out
out(x, z) :- edge(x, y), edge(y, z).
)");
  auto result = Engine().Run(sqir, &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ToStringSet(db.symbols()),
            (std::set<std::string>{"(1, 3)", "(2, 4)"}));
}

TEST_P(SqlEngineModeTest, RecursiveTcOnCycle) {
  Database db = MakeGraphDb({{1, 2}, {2, 3}, {3, 1}});
  auto sqir = Translate(R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.output tc
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
)");
  SqlStats stats;
  auto result = Engine().Run(sqir, &db, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 9u);  // complete closure of the 3-cycle
  EXPECT_GE(stats.recursive_iterations, 2u);
}

TEST_P(SqlEngineModeTest, NotExists) {
  Database db = MakeGraphDb({{1, 2}, {2, 3}});
  RelationSchema s;
  s.name = "blocked";
  s.columns = {{"x", ValueType::kNumber}};
  Relation* blocked = *db.CreateRelation(s);
  blocked->Insert({Value::Number(2)});
  auto sqir = Translate(R"(
.decl edge(x: number, y: number)
.input edge
.decl blocked(x: number)
.input blocked
.decl out(x: number, y: number)
.output out
out(x, y) :- edge(x, y), !blocked(y).
)");
  auto result = Engine().Run(sqir, &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ToStringSet(db.symbols()),
            (std::set<std::string>{"(2, 3)"}));
}

TEST_P(SqlEngineModeTest, GroupByAggregation) {
  Database db = MakeGraphDb({{1, 2}, {1, 3}, {2, 3}});
  auto sqir = Translate(R"(
.decl edge(x: number, y: number)
.input edge
.decl outdeg(x: number, d: number)
.output outdeg
outdeg(x, count(y)) :- edge(x, y).
)");
  auto result = Engine().Run(sqir, &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ToStringSet(db.symbols()),
            (std::set<std::string>{"(1, 2)", "(2, 1)"}));
}

TEST_P(SqlEngineModeTest, ArithmeticInSelectAndWhere) {
  Database db = MakeGraphDb({{1, 2}, {2, 5}});
  auto sqir = Translate(R"(
.decl edge(x: number, y: number)
.input edge
.decl out(s: number)
.output out
out(s) :- edge(x, y), s = x + y * 2, s > 5.
)");
  auto result = Engine().Run(sqir, &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ToStringSet(db.symbols()),
            (std::set<std::string>{"(12)"}));
}

TEST_P(SqlEngineModeTest, StringConstants) {
  Database db;
  RelationSchema s;
  s.name = "person";
  s.columns = {{"id", ValueType::kNumber}, {"name", ValueType::kSymbol}};
  Relation* rel = *db.CreateRelation(s);
  rel->Insert({Value::Number(1), db.Str("Ada")});
  rel->Insert({Value::Number(2), db.Str("Bob")});
  auto sqir = Translate(R"(
.decl person(id: number, name: symbol)
.input person
.decl out(id: number)
.output out
out(x) :- person(x, name), name = "Ada".
)");
  auto result = Engine().Run(sqir, &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ToStringSet(db.symbols()),
            (std::set<std::string>{"(1)"}));
}

TEST_P(SqlEngineModeTest, UnionOfMultipleRules) {
  Database db = MakeGraphDb({{1, 2}, {3, 4}});
  auto sqir = Translate(R"(
.decl edge(x: number, y: number)
.input edge
.decl nodes(x: number)
.output nodes
nodes(x) :- edge(x, _).
nodes(y) :- edge(_, y).
)");
  auto result = Engine().Run(sqir, &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 4u);
}

TEST_P(SqlEngineModeTest, IterationCapStopsRunawayRecursion) {
  // tc over a big cycle with a tiny cap.
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < 50; ++i) edges.emplace_back(i, (i + 1) % 50);
  Database db = MakeGraphDb(edges);
  auto sqir = Translate(R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.output tc
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
)");
  SqlOptions options;
  options.mode = GetParam();
  options.max_recursive_iterations = 3;
  SqlEngine engine(options);
  auto result = engine.Run(sqir, &db);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST_P(SqlEngineModeTest, StringKeyedRecursiveCte) {
  Database db;
  RelationSchema s;
  s.name = "edge";
  s.columns = {{"x", ValueType::kSymbol}, {"y", ValueType::kSymbol}};
  Relation* rel = *db.CreateRelation(s);
  rel->Insert({db.Str("a"), db.Str("b")});
  rel->Insert({db.Str("b"), db.Str("c")});
  auto sqir = Translate(R"(
.decl edge(x: symbol, y: symbol)
.input edge
.decl tc(x: symbol, y: symbol)
.output tc
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
)");
  const std::set<std::string> expected{"(\"a\", \"b\")", "(\"a\", \"c\")",
                                       "(\"b\", \"c\")"};
  auto result = Engine().Run(sqir, &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ToStringSet(db.symbols()), expected);
  // The CTE columns carry the declared symbol type end to end.
  ASSERT_EQ(result->column_types.size(), 2u);
  EXPECT_EQ(result->column_types[0], ValueType::kSymbol);
  EXPECT_EQ(result->column_types[1], ValueType::kSymbol);

  // Executor-side fallback: without the SQIR type metadata the schema is
  // inferred from the base branch's select items (regression: it used to
  // be hardcoded to kNumber).
  for (auto& cte : sqir.ctes) cte.column_types.clear();
  auto inferred = Engine().Run(sqir, &db);
  ASSERT_TRUE(inferred.ok()) << inferred.status().ToString();
  EXPECT_EQ(inferred->ToStringSet(db.symbols()), expected);
  ASSERT_EQ(inferred->column_types.size(), 2u);
  EXPECT_EQ(inferred->column_types[0], ValueType::kSymbol);
  EXPECT_EQ(inferred->column_types[1], ValueType::kSymbol);
}

TEST_P(SqlEngineModeTest, MultipleAggregatesInOneSelect) {
  Database db = MakeGraphDb({{1, 2}, {1, 3}, {2, 3}});
  // SELECT x, count(*), sum(y) FROM edge GROUP BY x — not expressible in
  // the Datalog frontend (one aggregate per head), so built directly.
  // Regression: the executor used to keep only the *last* aggregate item
  // and die with an Internal error on the first one.
  sqir::SqirProgram program;
  sqir::Select sel;
  sel.distinct = false;
  sel.items.push_back(sqir::SelectItem{sqir::Expr::Column("R1", "x"), "x"});
  sel.items.push_back(
      sqir::SelectItem{sqir::Expr::Agg(dlir::AggFunc::kCount, {}), "c"});
  sel.items.push_back(sqir::SelectItem{
      sqir::Expr::Agg(dlir::AggFunc::kSum, {sqir::Expr::Column("R1", "y")}),
      "s"});
  sel.from.push_back(sqir::TableRef{"edge", "R1"});
  sel.group_by.push_back(sqir::Expr::Column("R1", "x"));
  program.final_select = std::move(sel);
  program.output_columns = {"x", "c", "s"};
  auto result = Engine().Run(program, &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ToStringSet(db.symbols()),
            (std::set<std::string>{"(1, 2, 5)", "(2, 1, 3)"}));
}

TEST_P(SqlEngineModeTest, RecursiveSelfReferenceInNotExistsRejected) {
  Database db = MakeGraphDb({{1, 2}, {2, 3}});
  // A base table named like the CTE: before the fix, the NOT EXISTS
  // self-reference was not detected and silently resolved against it.
  RelationSchema s;
  s.name = "tc";
  s.columns = {{"x", ValueType::kNumber}, {"y", ValueType::kNumber}};
  (void)*db.CreateRelation(s);

  sqir::SqirProgram program;
  sqir::Cte cte;
  cte.name = "tc";
  cte.columns = {"x", "y"};
  cte.recursive = true;
  sqir::Select base;
  base.items.push_back(sqir::SelectItem{sqir::Expr::Column("R1", "x"), "x"});
  base.items.push_back(sqir::SelectItem{sqir::Expr::Column("R1", "y"), "y"});
  base.from.push_back(sqir::TableRef{"edge", "R1"});
  sqir::Select guarded = base;
  sqir::NotExists ne;
  ne.table = "tc";
  ne.equalities.emplace_back("x", sqir::Expr::Column("R1", "x"));
  ne.equalities.emplace_back("y", sqir::Expr::Column("R1", "y"));
  guarded.not_exists.push_back(std::move(ne));
  cte.branches.push_back(std::move(base));
  cte.branches.push_back(std::move(guarded));
  program.ctes.push_back(std::move(cte));
  sqir::Select final_select;
  final_select.items.push_back(
      sqir::SelectItem{sqir::Expr::Column("R1", "x"), "x"});
  final_select.items.push_back(
      sqir::SelectItem{sqir::Expr::Column("R1", "y"), "y"});
  final_select.from.push_back(sqir::TableRef{"tc", "R1"});
  program.final_select = std::move(final_select);
  program.output_columns = {"x", "y"};

  auto result = Engine().Run(program, &db);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
  EXPECT_NE(result.status().ToString().find("NOT EXISTS"), std::string::npos)
      << result.status().ToString();
}

TEST_P(SqlEngineModeTest, ConstantOnlyPredicateWithEmptyFrom) {
  // Regression: with no FROM tables there are no join steps, so the
  // alias-free predicate was never attached anywhere and Plan() failed
  // with Internal("predicate references unknown alias").
  Database db;
  auto holds = Translate(R"(
.decl out(x: number)
.output out
out(7) :- 1 < 2.
)");
  auto result = Engine().Run(holds, &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ToStringSet(db.symbols()),
            (std::set<std::string>{"(7)"}));

  auto fails = Translate(R"(
.decl out(x: number)
.output out
out(7) :- 1 > 2.
)");
  auto empty = Engine().Run(fails, &db);
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  EXPECT_TRUE(empty->rows.empty());
}

TEST_P(SqlEngineModeTest, MissingTableFails) {
  Database db;
  auto program = Parse(R"(
.decl edge(x: number, y: number)
.input edge
.decl out(x: number)
.output out
out(x) :- edge(x, _).
)");
  auto sqir = sqir::TranslateToSqir(program);
  ASSERT_TRUE(sqir.ok());
  auto result = Engine().Run(*sqir, &db);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

INSTANTIATE_TEST_SUITE_P(Modes, SqlEngineModeTest,
                         ::testing::Values(SqlMode::kVectorized,
                                           SqlMode::kTuplePipeline),
                         [](const auto& info) {
                           return info.param == SqlMode::kVectorized
                                      ? "Vectorized"
                                      : "TuplePipeline";
                         });

}  // namespace
}  // namespace raqlet::engine
