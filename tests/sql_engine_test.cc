// Tests for the SQL/CTE executor, in both execution modes
// (parameterized), including recursive CTE working-table semantics.

#include <gtest/gtest.h>

#include "dlir/parser.h"
#include "engine/sql/executor.h"
#include "sqir/dlir_to_sqir.h"

namespace raqlet::engine {
namespace {

dlir::Program Parse(const std::string& text) {
  auto program = dlir::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

sqir::SqirProgram Translate(const std::string& text) {
  auto sqir = sqir::TranslateToSqir(Parse(text));
  EXPECT_TRUE(sqir.ok()) << sqir.status().ToString();
  return std::move(sqir).value();
}

Database MakeGraphDb(const std::vector<std::pair<int, int>>& edges) {
  Database db;
  RelationSchema s;
  s.name = "edge";
  s.columns = {{"x", ValueType::kNumber}, {"y", ValueType::kNumber}};
  Relation* rel = *db.CreateRelation(s);
  for (auto [x, y] : edges) rel->Insert({Value::Number(x), Value::Number(y)});
  return db;
}

class SqlEngineModeTest : public ::testing::TestWithParam<SqlMode> {
 protected:
  SqlEngine Engine() const {
    SqlOptions options;
    options.mode = GetParam();
    return SqlEngine(options);
  }
};

TEST_P(SqlEngineModeTest, SimpleJoinWithConstant) {
  Database db = MakeGraphDb({{1, 2}, {2, 3}, {1, 3}});
  auto sqir = Translate(R"(
.decl edge(x: number, y: number)
.input edge
.decl out(x: number, y: number)
.output out
out(x, y) :- edge(x, y), x = 1.
)");
  auto result = Engine().Run(sqir, &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ToStringSet(db.symbols()),
            (std::set<std::string>{"(1, 2)", "(1, 3)"}));
}

TEST_P(SqlEngineModeTest, TwoHopJoin) {
  Database db = MakeGraphDb({{1, 2}, {2, 3}, {3, 4}});
  auto sqir = Translate(R"(
.decl edge(x: number, y: number)
.input edge
.decl out(x: number, z: number)
.output out
out(x, z) :- edge(x, y), edge(y, z).
)");
  auto result = Engine().Run(sqir, &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ToStringSet(db.symbols()),
            (std::set<std::string>{"(1, 3)", "(2, 4)"}));
}

TEST_P(SqlEngineModeTest, RecursiveTcOnCycle) {
  Database db = MakeGraphDb({{1, 2}, {2, 3}, {3, 1}});
  auto sqir = Translate(R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.output tc
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
)");
  SqlStats stats;
  auto result = Engine().Run(sqir, &db, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 9u);  // complete closure of the 3-cycle
  EXPECT_GE(stats.recursive_iterations, 2u);
}

TEST_P(SqlEngineModeTest, NotExists) {
  Database db = MakeGraphDb({{1, 2}, {2, 3}});
  RelationSchema s;
  s.name = "blocked";
  s.columns = {{"x", ValueType::kNumber}};
  Relation* blocked = *db.CreateRelation(s);
  blocked->Insert({Value::Number(2)});
  auto sqir = Translate(R"(
.decl edge(x: number, y: number)
.input edge
.decl blocked(x: number)
.input blocked
.decl out(x: number, y: number)
.output out
out(x, y) :- edge(x, y), !blocked(y).
)");
  auto result = Engine().Run(sqir, &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ToStringSet(db.symbols()),
            (std::set<std::string>{"(2, 3)"}));
}

TEST_P(SqlEngineModeTest, GroupByAggregation) {
  Database db = MakeGraphDb({{1, 2}, {1, 3}, {2, 3}});
  auto sqir = Translate(R"(
.decl edge(x: number, y: number)
.input edge
.decl outdeg(x: number, d: number)
.output outdeg
outdeg(x, count(y)) :- edge(x, y).
)");
  auto result = Engine().Run(sqir, &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ToStringSet(db.symbols()),
            (std::set<std::string>{"(1, 2)", "(2, 1)"}));
}

TEST_P(SqlEngineModeTest, ArithmeticInSelectAndWhere) {
  Database db = MakeGraphDb({{1, 2}, {2, 5}});
  auto sqir = Translate(R"(
.decl edge(x: number, y: number)
.input edge
.decl out(s: number)
.output out
out(s) :- edge(x, y), s = x + y * 2, s > 5.
)");
  auto result = Engine().Run(sqir, &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ToStringSet(db.symbols()),
            (std::set<std::string>{"(12)"}));
}

TEST_P(SqlEngineModeTest, StringConstants) {
  Database db;
  RelationSchema s;
  s.name = "person";
  s.columns = {{"id", ValueType::kNumber}, {"name", ValueType::kSymbol}};
  Relation* rel = *db.CreateRelation(s);
  rel->Insert({Value::Number(1), db.Str("Ada")});
  rel->Insert({Value::Number(2), db.Str("Bob")});
  auto sqir = Translate(R"(
.decl person(id: number, name: symbol)
.input person
.decl out(id: number)
.output out
out(x) :- person(x, name), name = "Ada".
)");
  auto result = Engine().Run(sqir, &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ToStringSet(db.symbols()),
            (std::set<std::string>{"(1)"}));
}

TEST_P(SqlEngineModeTest, UnionOfMultipleRules) {
  Database db = MakeGraphDb({{1, 2}, {3, 4}});
  auto sqir = Translate(R"(
.decl edge(x: number, y: number)
.input edge
.decl nodes(x: number)
.output nodes
nodes(x) :- edge(x, _).
nodes(y) :- edge(_, y).
)");
  auto result = Engine().Run(sqir, &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 4u);
}

TEST_P(SqlEngineModeTest, IterationCapStopsRunawayRecursion) {
  // tc over a big cycle with a tiny cap.
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < 50; ++i) edges.emplace_back(i, (i + 1) % 50);
  Database db = MakeGraphDb(edges);
  auto sqir = Translate(R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.output tc
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
)");
  SqlOptions options;
  options.mode = GetParam();
  options.max_recursive_iterations = 3;
  SqlEngine engine(options);
  auto result = engine.Run(sqir, &db);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST_P(SqlEngineModeTest, MissingTableFails) {
  Database db;
  auto program = Parse(R"(
.decl edge(x: number, y: number)
.input edge
.decl out(x: number)
.output out
out(x) :- edge(x, _).
)");
  auto sqir = sqir::TranslateToSqir(program);
  ASSERT_TRUE(sqir.ok());
  auto result = Engine().Run(*sqir, &db);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

INSTANTIATE_TEST_SUITE_P(Modes, SqlEngineModeTest,
                         ::testing::Values(SqlMode::kVectorized,
                                           SqlMode::kTuplePipeline),
                         [](const auto& info) {
                           return info.param == SqlMode::kVectorized
                                      ? "Vectorized"
                                      : "TuplePipeline";
                         });

}  // namespace
}  // namespace raqlet::engine
