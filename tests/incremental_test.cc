// Differential tests for incremental view maintenance
// (engine/datalog/incremental.h): randomized +/− base-fact streams over a
// catalogue of program shapes — recursion (linear, non-linear, mutual),
// stratified negation, @min lattices, aggregation, computed join args and
// multi-SCC strata — asserting after every delta that the incrementally
// maintained database holds exactly the rows a from-scratch evaluation
// produces, and that two views at 1 and 4 threads agree bit-for-bit
// (rows, row order, and stats).

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "dlir/parser.h"
#include "engine/datalog/engine.h"
#include "engine/datalog/incremental.h"
#include "obs/metrics.h"
#include "raqlet/compiler.h"
#include "runtime/query_guard.h"
#include "storage/database.h"

namespace raqlet {
namespace {

using engine::DatalogEngine;
using engine::IncrementalOptions;
using engine::IncrementalView;

using IntRow = std::vector<int64_t>;
using IntRows = std::set<IntRow>;

dlir::Program Parse(const std::string& text) {
  auto program = dlir::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

Tuple ToTuple(const IntRow& row) {
  Tuple t;
  t.reserve(row.size());
  for (int64_t v : row) t.push_back(Value::Number(v));
  return t;
}

IntRow FromTuple(const Tuple& t) {
  IntRow row;
  row.reserve(t.size());
  for (const Value& v : t) row.push_back(v.AsNumber());
  return row;
}

IntRows RowSet(const Relation& rel) {
  IntRows out;
  for (const Tuple& t : rel.MaterializeRows()) out.insert(FromTuple(t));
  return out;
}

std::vector<IntRow> RowList(const Relation& rel) {
  std::vector<IntRow> out;
  for (const Tuple& t : rel.MaterializeRows()) out.push_back(FromTuple(t));
  return out;
}

// ---------------------------------------------------------------------------
// Shape catalogue. Every input relation is numeric; `arities` drives the
// random tuple generator (each column drawn from [0, domain)).
// ---------------------------------------------------------------------------

struct InputSpec {
  std::string name;
  size_t arity;
  int64_t domain;
};

struct Shape {
  const char* name;
  const char* program;
  std::vector<InputSpec> inputs;
};

const Shape kShapes[] = {
    {"linear_tc",
     R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.output tc
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
)",
     {{"edge", 2, 8}}},

    {"nonlinear_tc",
     R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.output tc
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), tc(z, y).
)",
     {{"edge", 2, 8}}},

    {"mutual_recursion",
     R"(
.decl s(x: number, y: number)
.input s
.decl even(x: number)
.decl odd(x: number)
.output even
even(0).
odd(y) :- even(x), s(x, y).
even(y) :- odd(x), s(x, y).
)",
     {{"s", 2, 10}}},

    {"triangle_counting",
     R"(
.decl e(x: number, y: number)
.input e
.decl tri(x: number, y: number, z: number)
.output tri
tri(x, y, z) :- e(x, y), e(y, z), e(z, x).
)",
     {{"e", 2, 6}}},

    {"negation_nonrecursive",
     R"(
.decl node(x: number)
.input node
.decl edge(x: number, y: number)
.input edge
.decl un(x: number, y: number)
.output un
un(x, y) :- node(x), node(y), !edge(x, y).
)",
     {{"node", 1, 7}, {"edge", 2, 7}}},

    {"negation_over_recursion",
     R"(
.decl node(x: number)
.input node
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
.decl unreach(x: number, y: number)
.output unreach
unreach(x, y) :- node(x), node(y), !tc(x, y).
)",
     {{"node", 1, 6}, {"edge", 2, 6}}},

    {"lattice_shortest_path",
     R"(
.decl edge(x: number, y: number)
.input edge
.decl dist(x: number, y: number, d: number) @min
.output dist
dist(x, y, 1) :- edge(x, y).
dist(x, y, d + 1) :- dist(x, z, d), edge(z, y).
)",
     {{"edge", 2, 7}}},

    {"aggregation_outdeg",
     R"(
.decl edge(x: number, y: number)
.input edge
.decl outdeg(x: number, d: number)
.output outdeg
outdeg(x, count(y)) :- edge(x, y).
)",
     {{"edge", 2, 8}}},

    // Self-join whose second atom carries a computed argument: the delta
    // cannot be enumerated directly for that atom, exercising the
    // intersect-with-delta join path, plus a bound comparison constraint.
    {"computed_arg_self_join",
     R"(
.decl edge(x: number, y: number)
.input edge
.decl back(x: number, y: number)
.output back
back(x, y) :- edge(x, y), edge(y, x + 0), x < y.
)",
     {{"edge", 2, 8}}},
};

// ---------------------------------------------------------------------------
// Randomized stream harness.
// ---------------------------------------------------------------------------

using FactModel = std::map<std::string, IntRows>;

IntRow RandomRow(const InputSpec& spec, std::mt19937* rng) {
  IntRow row(spec.arity);
  std::uniform_int_distribution<int64_t> dist(0, spec.domain - 1);
  for (auto& v : row) v = dist(*rng);
  return row;
}

Database MakeDatabase(const dlir::Program& program, const FactModel& facts) {
  Database db;
  for (const dlir::RelationDecl& decl : program.decls) {
    if (!decl.is_input) continue;
    RelationSchema schema;
    schema.name = decl.name;
    schema.columns = decl.columns;
    Relation* rel = *db.CreateRelation(schema);
    auto it = facts.find(decl.name);
    if (it == facts.end()) continue;
    for (const IntRow& row : it->second) {
      EXPECT_TRUE(rel->Insert(ToTuple(row)).ok()) << decl.name;
    }
  }
  return db;
}

// One random delta: a few adds (possibly already present) and removes
// (drawn from the live facts, plus the occasional absent tuple) per input
// relation. Mutates `model` to the post-delta fact set.
DeltaBatch RandomDelta(const Shape& shape, FactModel* model,
                       std::mt19937* rng) {
  DeltaBatch batch;
  for (const InputSpec& spec : shape.inputs) {
    RelationDelta rd;
    rd.relation = spec.name;
    IntRows& live = (*model)[spec.name];
    std::uniform_int_distribution<int> count_dist(0, 3);
    int adds = count_dist(*rng);
    int removes = count_dist(*rng);
    std::vector<IntRow> add_rows;
    std::vector<IntRow> remove_rows;
    for (int i = 0; i < adds; ++i) add_rows.push_back(RandomRow(spec, rng));
    for (int i = 0; i < removes; ++i) {
      if (!live.empty() && std::uniform_int_distribution<int>(0, 4)(*rng) > 0) {
        // Remove a live tuple.
        auto it = live.begin();
        std::advance(it, std::uniform_int_distribution<size_t>(
                             0, live.size() - 1)(*rng));
        remove_rows.push_back(*it);
      } else {
        // Remove a (probably) absent tuple — must be a no-op.
        remove_rows.push_back(RandomRow(spec, rng));
      }
    }
    // Database::ApplyDelta semantics: final = (R ∖ (removes ∖ adds)) ∪ adds.
    IntRows add_set(add_rows.begin(), add_rows.end());
    for (const IntRow& row : remove_rows) {
      rd.removes.push_back(ToTuple(row));
      if (add_set.count(row) == 0) live.erase(row);
    }
    for (const IntRow& row : add_rows) {
      rd.adds.push_back(ToTuple(row));
      live.insert(row);
    }
    if (!rd.adds.empty() || !rd.removes.empty()) {
      batch.relations.push_back(std::move(rd));
    }
  }
  return batch;
}

// Oracle: a fresh database holding exactly `facts`, evaluated from
// scratch by the ordinary engine.
void OracleRows(const dlir::Program& program, const FactModel& facts,
                std::map<std::string, IntRows>* out) {
  Database db = MakeDatabase(program, facts);
  DatalogEngine eng;
  Status st = eng.Run(program, &db);
  ASSERT_TRUE(st.ok()) << st.ToString();
  out->clear();
  for (const dlir::RelationDecl& decl : program.decls) {
    (*out)[decl.name] = RowSet(**db.GetRelation(decl.name));
  }
}

// Runs `steps` random deltas through two incremental views (1 and 4
// threads), asserting after every delta that (a) both views hold exactly
// the oracle's row sets for every declared relation, and (b) the two
// views agree exactly — same rows in the same order, same stats.
void RunDifferential(const Shape& shape, uint32_t seed, int steps) {
  SCOPED_TRACE(std::string(shape.name) + " seed=" + std::to_string(seed));
  dlir::Program program = Parse(shape.program);
  std::mt19937 rng(seed);

  // Random initial base facts.
  FactModel model;
  for (const InputSpec& spec : shape.inputs) {
    int n = std::uniform_int_distribution<int>(2, 10)(rng);
    for (int i = 0; i < n; ++i) model[spec.name].insert(RandomRow(spec, &rng));
  }

  Database db1 = MakeDatabase(program, model);
  Database db4 = MakeDatabase(program, model);
  IncrementalOptions opt1;
  IncrementalOptions opt4;
  opt4.num_threads = 4;
  IncrementalView view1(opt1);
  IncrementalView view4(opt4);
  ASSERT_TRUE(view1.Initialize(program, &db1).ok());
  ASSERT_TRUE(view4.Initialize(program, &db4).ok());

  for (int step = 0; step < steps; ++step) {
    SCOPED_TRACE("step " + std::to_string(step));
    DeltaBatch batch = RandomDelta(shape, &model, &rng);

    auto r1 = view1.ApplyDelta(batch);
    auto r4 = view4.ApplyDelta(batch);
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    ASSERT_TRUE(r4.ok()) << r4.status().ToString();

    std::map<std::string, IntRows> oracle;
    OracleRows(program, model, &oracle);
    if (testing::Test::HasFatalFailure()) return;

    for (const dlir::RelationDecl& decl : program.decls) {
      // Row sets match a from-scratch evaluation exactly.
      EXPECT_EQ(RowSet(**db1.GetRelation(decl.name)), oracle[decl.name])
          << "relation " << decl.name << " diverged from the oracle";
      // The two thread counts agree on rows AND row order.
      EXPECT_EQ(RowList(**db1.GetRelation(decl.name)),
                RowList(**db4.GetRelation(decl.name)))
          << "relation " << decl.name << " row order differs across threads";
    }
    // The applied-delta reports and cumulative stats are bit-identical
    // across thread counts.
    EXPECT_EQ(r1->total_added, r4->total_added);
    EXPECT_EQ(r1->total_removed, r4->total_removed);
    ASSERT_EQ(r1->relations.size(), r4->relations.size());
    for (size_t i = 0; i < r1->relations.size(); ++i) {
      EXPECT_EQ(r1->relations[i].relation, r4->relations[i].relation);
      EXPECT_EQ(r1->relations[i].added, r4->relations[i].added);
      EXPECT_EQ(r1->relations[i].removed, r4->relations[i].removed);
    }
    EXPECT_EQ(view1.stats().ToString(), view4.stats().ToString());
  }
}

class IncrementalDifferentialTest
    : public testing::TestWithParam<std::tuple<size_t, uint32_t>> {};

TEST_P(IncrementalDifferentialTest, MatchesFromScratchAtAllThreadCounts) {
  const Shape& shape = kShapes[std::get<0>(GetParam())];
  RunDifferential(shape, std::get<1>(GetParam()), 8);
}

// 9 shapes × 3 seeds = 27 randomized update streams of 8 deltas each,
// every one checked at 1 and 4 threads.
INSTANTIATE_TEST_SUITE_P(
    Streams, IncrementalDifferentialTest,
    testing::Combine(testing::Range<size_t>(0, std::size(kShapes)),
                     testing::Values(7u, 1234u, 99991u)),
    [](const testing::TestParamInfo<std::tuple<size_t, uint32_t>>& info) {
      return std::string(kShapes[std::get<0>(info.param)].name) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Targeted unit tests.
// ---------------------------------------------------------------------------

constexpr char kTc[] = R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.output tc
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
)";

Database ChainDb(int n) {
  Database db;
  RelationSchema s;
  s.name = "edge";
  s.columns = {{"x", ValueType::kNumber}, {"y", ValueType::kNumber}};
  Relation* rel = *db.CreateRelation(s);
  for (int i = 0; i < n; ++i) {
    rel->Insert({Value::Number(i), Value::Number(i + 1)}).value();
  }
  return db;
}

TEST(IncrementalViewTest, InsertExtendsClosure) {
  Database db = ChainDb(3);  // 0-1-2-3: 6 tc pairs
  IncrementalView view;
  ASSERT_TRUE(view.Initialize(Parse(kTc), &db).ok());
  EXPECT_EQ((*db.GetRelation("tc"))->size(), 6u);

  DeltaBatch batch;
  batch.relations.push_back(
      {"edge", {{Value::Number(3), Value::Number(4)}}, {}});
  auto applied = view.ApplyDelta(batch);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ((*db.GetRelation("tc"))->size(), 10u);
  // Net report: edge +1, tc +4 (x→4 for x in 0..3).
  EXPECT_EQ(applied->total_added, 5u);
  EXPECT_EQ(applied->total_removed, 0u);
}

TEST(IncrementalViewTest, DeleteShrinksClosureViaDred) {
  Database db = ChainDb(4);  // 0-1-2-3-4: 10 tc pairs
  IncrementalView view;
  ASSERT_TRUE(view.Initialize(Parse(kTc), &db).ok());

  DeltaBatch batch;
  batch.relations.push_back(
      {"edge", {}, {{Value::Number(2), Value::Number(3)}}});
  auto applied = view.ApplyDelta(batch);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  // Chain splits into 0-1-2 and 3-4: 3 + 1 tc pairs survive.
  EXPECT_EQ((*db.GetRelation("tc"))->size(), 4u);
  EXPECT_GT(view.stats().overdeleted, 0u);
}

TEST(IncrementalViewTest, RederivationKeepsAlternatePaths) {
  Database db = ChainDb(2);  // 0-1-2
  (*db.GetRelation("edge"))->Insert({Value::Number(0), Value::Number(2)})
      .value();
  IncrementalView view;
  ASSERT_TRUE(view.Initialize(Parse(kTc), &db).ok());

  // Deleting 1→2 overdeletes tc(0,2), which the direct edge rederives.
  DeltaBatch batch;
  batch.relations.push_back(
      {"edge", {}, {{Value::Number(1), Value::Number(2)}}});
  auto applied = view.ApplyDelta(batch);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_TRUE((*db.GetRelation("tc"))
                  ->Contains({Value::Number(0), Value::Number(2)}));
  EXPECT_GT(view.stats().rederived, 0u);
}

// A delete that cascades through most of a large closure must abandon
// DRed mid-overdeletion and fall back to recompute-and-diff — and the
// fallback must land on exactly the rows DRed would have produced.
TEST(IncrementalViewTest, MassiveCascadeBailsOutToRecompute) {
  // Chain 0→1→…→150: tc holds 150·151/2 = 11325 pairs. Cutting the edge
  // 75→76 kills every pair crossing the cut (76·75 = 5700 > the 4096
  // bail-out floor and > 20% of the closure).
  Database db = ChainDb(150);
  IncrementalView view;  // default options: bail-out armed
  ASSERT_TRUE(view.Initialize(Parse(kTc), &db).ok());
  ASSERT_EQ((*db.GetRelation("tc"))->size(), 11325u);

  DeltaBatch batch;
  batch.relations.push_back(
      {"edge", {}, {{Value::Number(75), Value::Number(76)}}});
  auto applied = view.ApplyDelta(batch);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();

  // Two chains of 75 and 74 edges remain: 2850 + 2775 pairs.
  EXPECT_EQ((*db.GetRelation("tc"))->size(), 5625u);
  EXPECT_EQ(view.stats().dred_bailouts, 1u);
  EXPECT_EQ(view.stats().recomputed_sccs, 1u);
  // The cascade was abandoned before any erase, so no overdeletion or
  // rederivation was recorded.
  EXPECT_EQ(view.stats().overdeleted, 0u);
  EXPECT_EQ(view.stats().rederived, 0u);
}

TEST(IncrementalViewTest, BailOutDisabledKeepsPureDred) {
  Database db = ChainDb(150);
  IncrementalOptions opts;
  opts.dred_recompute_threshold = 0.0;  // pure DRed, no escape hatch
  IncrementalView view(opts);
  ASSERT_TRUE(view.Initialize(Parse(kTc), &db).ok());

  DeltaBatch batch;
  batch.relations.push_back(
      {"edge", {}, {{Value::Number(75), Value::Number(76)}}});
  auto applied = view.ApplyDelta(batch);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();

  EXPECT_EQ((*db.GetRelation("tc"))->size(), 5625u);
  EXPECT_EQ(view.stats().dred_bailouts, 0u);
  EXPECT_EQ(view.stats().recomputed_sccs, 0u);
  EXPECT_EQ(view.stats().overdeleted, 5700u);
}

TEST(IncrementalViewTest, NoopDeltaSkipsEverySCC) {
  Database db = ChainDb(3);
  IncrementalView view;
  ASSERT_TRUE(view.Initialize(Parse(kTc), &db).ok());

  DeltaBatch batch;  // removing an absent tuple changes nothing
  batch.relations.push_back(
      {"edge", {}, {{Value::Number(7), Value::Number(9)}}});
  auto applied = view.ApplyDelta(batch);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_TRUE(applied->relations.empty());
  EXPECT_EQ(view.stats().sccs_touched, 0u);
  EXPECT_EQ(view.stats().sccs_skipped, 1u);
}

TEST(IncrementalViewTest, DeltaToNonInputRelationIsRejectedWithoutPoison) {
  Database db = ChainDb(3);
  IncrementalView view;
  ASSERT_TRUE(view.Initialize(Parse(kTc), &db).ok());

  DeltaBatch bad;
  bad.relations.push_back(
      {"tc", {{Value::Number(0), Value::Number(9)}}, {}});
  EXPECT_EQ(view.ApplyDelta(bad).status().code(),
            StatusCode::kInvalidArgument);

  // Pre-validation failure: the view keeps working.
  DeltaBatch good;
  good.relations.push_back(
      {"edge", {{Value::Number(3), Value::Number(4)}}, {}});
  EXPECT_TRUE(view.ApplyDelta(good).ok());
}

TEST(IncrementalViewTest, MidApplyFailurePoisonsUntilReinitialize) {
  Database db = ChainDb(3);
  IncrementalView view;
  ASSERT_TRUE(view.Initialize(Parse(kTc), &db).ok());

  DeltaBatch bad;  // arity mismatch surfaces inside Database::ApplyDelta
  bad.relations.push_back({"edge", {{Value::Number(1)}}, {}});
  EXPECT_FALSE(view.ApplyDelta(bad).ok());

  DeltaBatch good;
  good.relations.push_back(
      {"edge", {{Value::Number(3), Value::Number(4)}}, {}});
  EXPECT_EQ(view.ApplyDelta(good).status().code(),
            StatusCode::kInvalidArgument);

  ASSERT_TRUE(view.Initialize(Parse(kTc), &db).ok());
  EXPECT_TRUE(view.ApplyDelta(good).ok());
}

TEST(IncrementalViewTest, ApplyBeforeInitializeFails) {
  IncrementalView view;
  EXPECT_FALSE(view.initialized());
  EXPECT_EQ(view.ApplyDelta({}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(IncrementalViewTest, GuardCancellationTripsAndPoisons) {
  Database db = ChainDb(10);
  IncrementalView view;
  ASSERT_TRUE(view.Initialize(Parse(kTc), &db).ok());

  runtime::QueryGuard guard;
  guard.Cancel();
  DeltaBatch batch;
  batch.relations.push_back(
      {"edge", {{Value::Number(10), Value::Number(11)}}, {}});
  EXPECT_EQ(view.ApplyDelta(batch, nullptr, &guard).status().code(),
            StatusCode::kCancelled);
  // Aborting mid-repair leaves derived state undefined → poisoned.
  EXPECT_EQ(view.ApplyDelta(batch).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(IncrementalViewTest, MetricsRecordCounters) {
  Database db = ChainDb(4);
  IncrementalView view;
  ASSERT_TRUE(view.Initialize(Parse(kTc), &db).ok());

  obs::IncrementalMetrics metrics;
  DeltaBatch batch;
  batch.relations.push_back({"edge",
                             {{Value::Number(4), Value::Number(5)}},
                             {{Value::Number(0), Value::Number(1)}}});
  ASSERT_TRUE(view.ApplyDelta(batch, &metrics).ok());
  EXPECT_EQ(metrics.base_added, 1u);
  EXPECT_EQ(metrics.base_removed, 1u);
  EXPECT_EQ(metrics.sccs_touched, 1u);
  EXPECT_GT(metrics.tuples_inserted + metrics.tuples_deleted, 0u);
  EXPECT_FALSE(metrics.empty());
}

TEST(IncrementalViewTest, CompilerFacadeRoundTrip) {
  Database db = ChainDb(3);
  Compiler compiler;
  obs::QueryMetrics metrics;
  auto view = compiler.BeginIncremental(Parse(kTc), &db, {}, &metrics);
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  DeltaBatch batch;
  batch.relations.push_back(
      {"edge", {{Value::Number(3), Value::Number(4)}}, {}});
  auto applied = compiler.ApplyDelta(view->get(), batch, &metrics);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ((*db.GetRelation("tc"))->size(), 10u);
  EXPECT_FALSE(metrics.incremental.empty());
  EXPECT_FALSE(metrics.memory.empty());
  // Both facade phases were timed.
  bool saw_init = false, saw_apply = false;
  for (const auto& phase : metrics.phases) {
    saw_init |= phase.name == "initialize-incremental";
    saw_apply |= phase.name == "apply-delta";
  }
  EXPECT_TRUE(saw_init);
  EXPECT_TRUE(saw_apply);
  EXPECT_NE(metrics.ToString().find("incremental:"), std::string::npos);
}

// Large single delta: enough rows to cross the parallel chunking
// threshold, so the 4-thread view actually fans the insertion
// continuation out across its pool — and must still match the serial
// view row-for-row and the oracle set-for-set.
TEST(IncrementalViewTest, LargeBatchParallelMatchesSerial) {
  dlir::Program program = Parse(kTc);
  std::mt19937 rng(4242);
  std::uniform_int_distribution<int64_t> node(0, 199);

  Database db1 = ChainDb(0);
  Database db4 = ChainDb(0);
  IncrementalOptions opt4;
  opt4.num_threads = 4;
  IncrementalView view1;
  IncrementalView view4(opt4);
  ASSERT_TRUE(view1.Initialize(program, &db1).ok());
  ASSERT_TRUE(view4.Initialize(program, &db4).ok());

  DeltaBatch batch;
  RelationDelta rd;
  rd.relation = "edge";
  for (int i = 0; i < 400; ++i) {
    rd.adds.push_back({Value::Number(node(rng)), Value::Number(node(rng))});
  }
  batch.relations.push_back(rd);
  auto r1 = view1.ApplyDelta(batch);
  auto r4 = view4.ApplyDelta(batch);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r4.ok()) << r4.status().ToString();
  EXPECT_EQ(RowList(**db1.GetRelation("tc")),
            RowList(**db4.GetRelation("tc")));
  EXPECT_EQ(view1.stats().ToString(), view4.stats().ToString());

  // And both match a from-scratch evaluation.
  Database oracle_db = ChainDb(0);
  Relation* edge = *oracle_db.GetRelation("edge");
  for (const Tuple& t : rd.adds) edge->Insert(t).value();
  DatalogEngine eng;
  ASSERT_TRUE(eng.Run(program, &oracle_db).ok());
  EXPECT_EQ(RowSet(**db1.GetRelation("tc")),
            RowSet(**oracle_db.GetRelation("tc")));
}

TEST(IncrementalViewTest, StatsAccumulateAcrossDeltas) {
  Database db = ChainDb(3);
  IncrementalView view;
  ASSERT_TRUE(view.Initialize(Parse(kTc), &db).ok());
  for (int i = 3; i < 6; ++i) {
    DeltaBatch batch;
    batch.relations.push_back(
        {"edge", {{Value::Number(i), Value::Number(i + 1)}}, {}});
    ASSERT_TRUE(view.ApplyDelta(batch).ok());
  }
  EXPECT_EQ(view.stats().deltas_applied, 3u);
  EXPECT_EQ(view.stats().base_added, 3u);
  EXPECT_NE(view.stats().ToString().find("deltas=3"), std::string::npos);
}

}  // namespace
}  // namespace raqlet
