// Tests for schema/: PG-Schema parsing (Fig. 2a) and the PG->DL schema
// translation (Fig. 2b).

#include <gtest/gtest.h>

#include "schema/dl_schema.h"
#include "schema/pg_schema.h"

namespace raqlet::schema {
namespace {

constexpr char kPaperSchema[] = R"(
CREATE GRAPH {
  (personType: Person {id INT, firstName STRING, locationIP STRING}),
  (cityType: City {id INT, name STRING}),
  (:personType)-[locationType: isLocatedIn {id INT}]->(:cityType)
}
)";

TEST(PgSchemaTest, ParsesPaperExample) {
  auto schema = ParsePgSchema(kPaperSchema);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  ASSERT_EQ(schema->nodes.size(), 2u);
  ASSERT_EQ(schema->edges.size(), 1u);
  EXPECT_EQ(schema->nodes[0].type_name, "personType");
  EXPECT_EQ(schema->nodes[0].label, "Person");
  EXPECT_EQ(schema->nodes[0].properties.size(), 3u);
  EXPECT_EQ(schema->edges[0].label, "isLocatedIn");
  EXPECT_EQ(schema->edges[0].src_type, "personType");
  EXPECT_EQ(schema->edges[0].dst_type, "cityType");
}

TEST(PgSchemaTest, LookupByLabelAndTypeName) {
  auto schema = ParsePgSchema(kPaperSchema);
  ASSERT_TRUE(schema.ok());
  EXPECT_NE(schema->FindNodeByLabel("City"), nullptr);
  EXPECT_EQ(schema->FindNodeByLabel("Ghost"), nullptr);
  EXPECT_NE(schema->FindNodeByTypeName("cityType"), nullptr);
  // Edge label matches both declared and upper-snake spelling.
  EXPECT_NE(schema->FindEdgeByLabel("isLocatedIn"), nullptr);
  EXPECT_NE(schema->FindEdgeByLabel("IS_LOCATED_IN"), nullptr);
}

TEST(PgSchemaTest, RequiresNodeId) {
  auto schema = ParsePgSchema("CREATE GRAPH { (t: NoId {name STRING}) }");
  ASSERT_FALSE(schema.ok());
  EXPECT_NE(schema.status().message().find("'id'"), std::string::npos);
}

TEST(PgSchemaTest, RejectsUnknownEndpoint) {
  auto schema = ParsePgSchema(R"(
CREATE GRAPH {
  (a: A {id INT}),
  (:a)-[e: rel]->(:ghost)
}
)");
  EXPECT_FALSE(schema.ok());
}

TEST(PgSchemaTest, RejectsUnknownPropertyType) {
  auto schema =
      ParsePgSchema("CREATE GRAPH { (a: A {id INT, x BLOB}) }");
  EXPECT_FALSE(schema.ok());
}

TEST(PgSchemaTest, NodesWithoutPropertiesNeedIdToo) {
  auto schema = ParsePgSchema("CREATE GRAPH { (a: A) }");
  EXPECT_FALSE(schema.ok());  // no id property
}

TEST(PgSchemaTest, ToStringRoundTrips) {
  auto schema = ParsePgSchema(kPaperSchema);
  ASSERT_TRUE(schema.ok());
  auto reparsed = ParsePgSchema(schema->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->ToString(), schema->ToString());
}

TEST(UpperSnakeTest, ConvertsCamelCase) {
  EXPECT_EQ(ToUpperSnake("isLocatedIn"), "IS_LOCATED_IN");
  EXPECT_EQ(ToUpperSnake("knows"), "KNOWS");
  EXPECT_EQ(ToUpperSnake("KNOWS"), "KNOWS");
  EXPECT_EQ(ToUpperSnake("hasCreator"), "HAS_CREATOR");
  EXPECT_EQ(ToUpperSnake("IS_LOCATED_IN"), "IS_LOCATED_IN");
}

TEST(DlSchemaTest, TranslatesPaperExample) {
  auto pg = ParsePgSchema(kPaperSchema);
  ASSERT_TRUE(pg.ok());
  DlSchema dl = TranslateSchema(*pg);

  ASSERT_EQ(dl.edbs.size(), 3u);
  EXPECT_EQ(dl.edbs[0].name, "Person");
  EXPECT_EQ(dl.edbs[1].name, "City");
  EXPECT_EQ(dl.edbs[2].name, "Person_IS_LOCATED_IN_City");
  // Edge EDB columns: (id1, id2, <props>) per Fig. 2b.
  ASSERT_EQ(dl.edbs[2].columns.size(), 3u);
  EXPECT_EQ(dl.edbs[2].columns[0].name, "id1");
  EXPECT_EQ(dl.edbs[2].columns[1].name, "id2");
  EXPECT_EQ(dl.edbs[2].columns[2].name, "id");
  // All EDBs are inputs; node primary key is the id column.
  for (const auto& decl : dl.edbs) EXPECT_TRUE(decl.is_input);
  EXPECT_EQ(dl.edbs[0].primary_key, std::vector<int>{0});
}

TEST(DlSchemaTest, IdMovesToFirstColumn) {
  auto pg = ParsePgSchema(
      "CREATE GRAPH { (t: Tagged {name STRING, id INT, score FLOAT}) }");
  ASSERT_TRUE(pg.ok());
  DlSchema dl = TranslateSchema(*pg);
  ASSERT_EQ(dl.edbs[0].columns.size(), 3u);
  EXPECT_EQ(dl.edbs[0].columns[0].name, "id");
  EXPECT_EQ(dl.edbs[0].columns[1].name, "name");
  EXPECT_EQ(dl.edbs[0].columns[2].name, "score");
  const NodeRelationInfo* info = dl.FindNode("Tagged");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->PropertyColumn("score"), 2);
  EXPECT_EQ(info->PropertyColumn("id"), 0);
}

TEST(DlSchemaTest, EdgePropertyColumnsOffsetPastEndpoints) {
  auto pg = ParsePgSchema(kPaperSchema);
  ASSERT_TRUE(pg.ok());
  DlSchema dl = TranslateSchema(*pg);
  const EdgeRelationInfo* edge = dl.FindEdge("IS_LOCATED_IN");
  ASSERT_NE(edge, nullptr);
  EXPECT_EQ(edge->src_label, "Person");
  EXPECT_EQ(edge->dst_label, "City");
  EXPECT_EQ(edge->PropertyColumn("id"), 2);
  EXPECT_EQ(edge->PropertyColumn("ghost"), -1);
}

TEST(DlSchemaTest, CreateEdbRelationsPopulatesDatabase) {
  auto pg = ParsePgSchema(kPaperSchema);
  ASSERT_TRUE(pg.ok());
  DlSchema dl = TranslateSchema(*pg);
  Database db;
  ASSERT_TRUE(CreateEdbRelations(dl, &db).ok());
  EXPECT_TRUE(db.HasRelation("Person"));
  EXPECT_TRUE(db.HasRelation("City"));
  EXPECT_TRUE(db.HasRelation("Person_IS_LOCATED_IN_City"));
  // Idempotent: re-creating is a no-op, not an error.
  EXPECT_TRUE(CreateEdbRelations(dl, &db).ok());
}

}  // namespace
}  // namespace raqlet::schema
