// Determinism of the parallel evaluation runtime: evaluating any program
// with N threads must produce exactly the same relations — same tuples in
// the same insertion order — as evaluating it with 1 thread, and both must
// agree with the other engines. Exercises fixed workloads (negation,
// aggregation, lattices, mutual recursion), randomly generated recursive
// programs, and the cross-engine Cypher harness's random social graphs.

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "dlir/parser.h"
#include "engine/datalog/engine.h"
#include "raqlet/compiler.h"

namespace raqlet {
namespace {

// Deterministic random edge/node facts shared by every run of one case.
void FillEdges(Database* db, int nodes, int edges, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> pick(1, nodes);
  Relation* node_rel = *db->GetRelation("node");
  for (int i = 1; i <= nodes; ++i) node_rel->Insert({Value::Number(i)});
  Relation* edge_rel = *db->GetRelation("edge");
  for (int i = 0; i < edges; ++i) {
    edge_rel->Insert({Value::Number(pick(rng)), Value::Number(pick(rng))});
  }
}

Result<Database> MakeEdgeDb(const dlir::Program& program, int nodes, int edges,
                            unsigned seed) {
  Database db;
  for (const dlir::RelationDecl& decl : program.decls) {
    if (!decl.is_input) continue;
    RelationSchema schema;
    schema.name = decl.name;
    schema.columns = decl.columns;
    RAQLET_RETURN_IF_ERROR(db.CreateRelation(std::move(schema)).status());
  }
  FillEdges(&db, nodes, edges, seed);
  return db;
}

// Runs `program` serially and with `threads` workers (on fresh but
// identically-seeded databases) and asserts every relation ends up with
// identical rows in identical order.
void ExpectDeterministicEvaluation(const std::string& text, int threads,
                                   unsigned seed, int nodes = 40,
                                   int edges = 120) {
  auto program = dlir::ParseProgram(text);
  ASSERT_TRUE(program.ok()) << program.status().ToString() << "\n" << text;

  auto serial_db = MakeEdgeDb(*program, nodes, edges, seed);
  ASSERT_TRUE(serial_db.ok()) << serial_db.status().ToString();
  auto parallel_db = MakeEdgeDb(*program, nodes, edges, seed);
  ASSERT_TRUE(parallel_db.ok()) << parallel_db.status().ToString();

  engine::EvalStats serial_stats;
  engine::DatalogEngine serial_engine;  // num_threads == 1
  Status s1 = serial_engine.Run(*program, &*serial_db, &serial_stats);
  ASSERT_TRUE(s1.ok()) << s1.ToString() << "\n" << text;

  engine::EvalOptions parallel_options;
  parallel_options.num_threads = threads;
  engine::EvalStats parallel_stats;
  engine::DatalogEngine parallel_engine(parallel_options);
  Status sn = parallel_engine.Run(*program, &*parallel_db, &parallel_stats);
  ASSERT_TRUE(sn.ok()) << sn.ToString() << "\n" << text;

  for (const std::string& name : serial_db->RelationNames()) {
    auto lhs = serial_db->GetRelation(name);
    auto rhs = parallel_db->GetRelation(name);
    ASSERT_TRUE(lhs.ok() && rhs.ok()) << name;
    const std::vector<Tuple>& serial_rows = (*lhs)->rows();
    const std::vector<Tuple>& parallel_rows = (*rhs)->rows();
    ASSERT_EQ(serial_rows.size(), parallel_rows.size())
        << "relation " << name << " diverged at " << threads << " threads\n"
        << text;
    for (size_t i = 0; i < serial_rows.size(); ++i) {
      ASSERT_EQ(serial_rows[i], parallel_rows[i])
          << "relation " << name << " row " << i << " diverged ("
          << TupleToString(serial_rows[i]) << " vs "
          << TupleToString(parallel_rows[i]) << ") at " << threads
          << " threads\n" << text;
    }
  }
  // The work done must match too, not just the result: same fixpoint
  // structure, same derived-tuple stream.
  EXPECT_EQ(serial_stats.fixpoint_rounds, parallel_stats.fixpoint_rounds);
  EXPECT_EQ(serial_stats.tuples_inserted, parallel_stats.tuples_inserted);
  EXPECT_EQ(serial_stats.tuples_considered, parallel_stats.tuples_considered);
}

constexpr char kTransitiveClosure[] = R"(
.decl node(x: number)
.input node
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.output tc
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
)";

constexpr char kMutualRecursion[] = R"(
.decl node(x: number)
.input node
.decl edge(x: number, y: number)
.input edge
.decl odd(x: number, y: number)
.decl even(x: number, y: number)
.output even
odd(x, y) :- edge(x, y).
odd(x, y) :- even(x, z), edge(z, y).
even(x, y) :- odd(x, z), edge(z, y).
)";

// Negation and aggregation on top of a recursive SCC (stratified).
constexpr char kNegationAndAggregation[] = R"(
.decl node(x: number)
.input node
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
.decl unreachable(x: number, y: number)
unreachable(x, y) :- node(x), node(y), !tc(x, y).
.decl fanout(x: number, n: number)
.output fanout
fanout(x, count()) :- unreachable(x, _).
)";

constexpr char kShortestPathLattice[] = R"(
.decl node(x: number)
.input node
.decl edge(x: number, y: number)
.input edge
.decl dist(x: number, y: number, d: number) @min
.output dist
dist(x, y, 1) :- edge(x, y).
dist(x, y, d + 1) :- dist(x, z, d), edge(z, y).
)";

// Many independent SCCs plus a join stratum on top, so the SCC scheduler
// actually has concurrency to exploit.
constexpr char kIndependentSccs[] = R"(
.decl node(x: number)
.input node
.decl edge(x: number, y: number)
.input edge
.decl fwd(x: number, y: number)
fwd(x, y) :- edge(x, y).
fwd(x, y) :- fwd(x, z), edge(z, y).
.decl bwd(x: number, y: number)
bwd(x, y) :- edge(y, x).
bwd(x, y) :- bwd(x, z), edge(y, z).
.decl loops(x: number)
loops(x) :- fwd(x, x).
.decl both(x: number, y: number)
.output both
both(x, y) :- fwd(x, y), bwd(x, y).
)";

// Many relations derive tuples in the same round — a mutually-recursive
// ring of 8 predicates (one SCC, 8 heads staged per fixpoint round) plus
// independent downstream strata — so the per-relation sharded merge has
// real shards to run concurrently. Exact row order and stats must still
// match the serial run.
constexpr char kManyOutputRelations[] = R"(
.decl node(x: number)
.input node
.decl edge(x: number, y: number)
.input edge
.decl s0(x: number, y: number)
.decl s1(x: number, y: number)
.decl s2(x: number, y: number)
.decl s3(x: number, y: number)
.decl s4(x: number, y: number)
.decl s5(x: number, y: number)
.decl s6(x: number, y: number)
.decl s7(x: number, y: number)
.output s0
s0(x, y) :- edge(x, y).
s0(x, y) :- s7(x, z), edge(z, y).
s1(x, y) :- s0(x, z), edge(z, y).
s2(x, y) :- s1(x, z), edge(z, y).
s3(x, y) :- s2(x, z), edge(z, y).
s4(x, y) :- s3(x, z), edge(z, y).
s5(x, y) :- s4(x, z), edge(z, y).
s6(x, y) :- s5(x, z), edge(z, y).
s7(x, y) :- s6(x, z), edge(z, y).
.decl fwd(x: number, y: number)
fwd(x, y) :- s0(x, y).
fwd(x, y) :- fwd(x, z), s1(z, y).
.decl pairs(x: number, y: number)
.output pairs
pairs(x, y) :- fwd(x, y), s2(x, y).
)";

class ParallelDeterminismTest : public ::testing::TestWithParam<int> {};

TEST(ParallelDeterminismShardedMergeTest, ManyOutputRelationsAtEightThreads) {
  for (unsigned seed : {3u, 19u}) {
    ExpectDeterministicEvaluation(kManyOutputRelations, /*threads=*/8, seed,
                                  /*nodes=*/30, /*edges=*/90);
  }
}

TEST_P(ParallelDeterminismTest, TransitiveClosure) {
  for (unsigned seed : {1u, 2u, 3u}) {
    ExpectDeterministicEvaluation(kTransitiveClosure, GetParam(), seed);
  }
}

TEST_P(ParallelDeterminismTest, MutualRecursion) {
  ExpectDeterministicEvaluation(kMutualRecursion, GetParam(), 7);
}

TEST_P(ParallelDeterminismTest, NegationAndAggregation) {
  ExpectDeterministicEvaluation(kNegationAndAggregation, GetParam(), 11);
}

TEST_P(ParallelDeterminismTest, ShortestPathLattice) {
  ExpectDeterministicEvaluation(kShortestPathLattice, GetParam(), 13);
}

TEST_P(ParallelDeterminismTest, IndependentSccs) {
  ExpectDeterministicEvaluation(kIndependentSccs, GetParam(), 17);
}

// Random recursive programs: a pool of binary predicates defined by rules
// drawn from safe templates, producing chains, mutual-recursion SCCs, and
// multi-recursive-atom rules (several delta variants per round).
std::string RandomRecursiveProgram(unsigned seed) {
  std::mt19937 rng(seed);
  constexpr int kRelations = 5;
  std::uniform_int_distribution<int> rel(0, kRelations - 1);
  std::uniform_int_distribution<int> extra_rules(1, 3);
  std::uniform_int_distribution<int> shape(0, 3);

  std::ostringstream out;
  out << ".decl node(x: number)\n.input node\n";
  out << ".decl edge(x: number, y: number)\n.input edge\n";
  for (int i = 0; i < kRelations; ++i) {
    out << ".decl r" << i << "(x: number, y: number)\n";
  }
  out << ".output r0\n";
  for (int i = 0; i < kRelations; ++i) {
    out << "r" << i << "(x, y) :- edge(x, y).\n";
    int n = extra_rules(rng);
    for (int k = 0; k < n; ++k) {
      int j = rel(rng);
      int m = rel(rng);
      switch (shape(rng)) {
        case 0:  // linear step through another predicate
          out << "r" << i << "(x, y) :- r" << j << "(x, z), edge(z, y).\n";
          break;
        case 1:  // two-predicate join: both atoms may be recursive
          out << "r" << i << "(x, y) :- r" << j << "(x, z), r" << m
              << "(z, y).\n";
          break;
        case 2:  // reversal
          out << "r" << i << "(x, y) :- r" << j << "(y, x).\n";
          break;
        default:  // join plus a filtering constraint
          out << "r" << i << "(x, y) :- r" << j << "(x, z), edge(z, y), "
              << "x != y.\n";
          break;
      }
    }
  }
  return out.str();
}

TEST_P(ParallelDeterminismTest, RandomRecursivePrograms) {
  for (unsigned seed = 0; seed < 8; ++seed) {
    std::string text = RandomRecursiveProgram(seed);
    ExpectDeterministicEvaluation(text, GetParam(), seed * 13 + 1,
                                  /*nodes=*/25, /*edges=*/60);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelDeterminismTest,
                         ::testing::Values(2, 4, 8));

// The cross-engine harness's shape: random social graph, Cypher frontend,
// every engine — with the Datalog engine additionally run at 4 threads.
constexpr char kSocialSchema[] = R"(
CREATE GRAPH {
  (personType: Person {id INT, firstName STRING, age INT}),
  (cityType: City {id INT, name STRING}),
  (:personType)-[locationType: isLocatedIn {id INT}]->(:cityType),
  (:personType)-[knowsType: knows {id INT}]->(:personType)
}
)";

void FillSocialDb(Database* db, int persons, int cities, int knows_edges,
                  unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> person(1, persons);
  std::uniform_int_distribution<int> city(1, cities);
  std::uniform_int_distribution<int> age(18, 80);
  Relation* person_rel = *db->GetRelation("Person");
  for (int i = 1; i <= persons; ++i) {
    person_rel->Insert({Value::Number(i), db->Str("p" + std::to_string(i % 7)),
                        Value::Number(age(rng))});
  }
  Relation* city_rel = *db->GetRelation("City");
  for (int i = 1; i <= cities; ++i) {
    city_rel->Insert(
        {Value::Number(1000 + i), db->Str("c" + std::to_string(i))});
  }
  Relation* located = *db->GetRelation("Person_IS_LOCATED_IN_City");
  int edge_id = 0;
  for (int i = 1; i <= persons; ++i) {
    located->Insert({Value::Number(i), Value::Number(1000 + city(rng)),
                     Value::Number(++edge_id)});
  }
  Relation* knows = *db->GetRelation("Person_KNOWS_Person");
  for (int i = 0; i < knows_edges; ++i) {
    int a = person(rng);
    int b = person(rng);
    if (a == b) continue;
    knows->Insert(
        {Value::Number(a), Value::Number(b), Value::Number(++edge_id)});
  }
}

class ParallelCrossEngineTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelCrossEngineTest, CypherQueriesAgreeAcrossEnginesAndThreads) {
  const std::vector<std::string> queries = {
      "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.id < 5 "
      "RETURN DISTINCT a.id AS a, b.id AS b",
      "MATCH (a:Person {id: 2})-[:KNOWS*]->(b:Person) "
      "RETURN DISTINCT b.id AS id",
      "MATCH p = shortestPath((a:Person {id: 1})-[:KNOWS*]->(b:Person)) "
      "RETURN DISTINCT b.id AS id, length(p) AS len",
      "MATCH (a:Person)-[:KNOWS]->(b:Person) "
      "WITH a, count(b) AS friends "
      "RETURN DISTINCT a.id AS id, friends",
  };
  for (const std::string& query : queries) {
    Compiler compiler;
    ASSERT_TRUE(compiler.LoadPgSchema(kSocialSchema).ok());
    Database db;
    ASSERT_TRUE(compiler.CreateEdbs(&db).ok());
    FillSocialDb(&db, 30, 4, 60, static_cast<unsigned>(GetParam()) * 77 + 5);

    auto unit = compiler.CompileCypher(query, {});
    ASSERT_TRUE(unit.ok()) << unit.status().ToString() << "\n" << query;

    auto serial = compiler.RunOnDatalog(unit->dlir, &db);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString() << "\n" << query;

    engine::EvalOptions options;
    options.num_threads = 4;
    auto parallel = compiler.RunOnDatalog(unit->dlir, &db, nullptr, options);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString() << "\n" << query;

    // Bit-identical result table, order included.
    ASSERT_EQ(serial->rows.size(), parallel->rows.size()) << query;
    for (size_t i = 0; i < serial->rows.size(); ++i) {
      EXPECT_EQ(serial->rows[i], parallel->rows[i]) << query << " row " << i;
    }

    // And the graph engine still agrees on the result set.
    auto store = compiler.BuildGraphStore(db);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    auto graph = compiler.RunOnGraph(unit->pgir, *store, &db);
    ASSERT_TRUE(graph.ok()) << graph.status().ToString() << "\n" << query;
    EXPECT_EQ(graph->ToStringSet(db.symbols()),
              parallel->ToStringSet(db.symbols()))
        << query;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ParallelCrossEngineTest,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace raqlet
