// Tests for unparser options and explicit optimizer entry points not
// covered elsewhere: Soufflé printer flags, SQL printer flags, and the
// explicit magic-set API.

#include <gtest/gtest.h>

#include "dlir/parser.h"
#include "dlir/souffle_printer.h"
#include "opt/magic_sets.h"
#include "sqir/dlir_to_sqir.h"
#include "sqir/sql_printer.h"

namespace raqlet {
namespace {

dlir::Program Parse(const std::string& text) {
  auto program = dlir::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

constexpr char kTc[] = R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.output tc
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
)";

TEST(SoufflePrinterOptionsTest, IoDirectivesCanBeSuppressed) {
  dlir::SouffleOptions options;
  options.emit_io_directives = false;
  std::string text = dlir::ToSouffle(Parse(kTc), options);
  EXPECT_EQ(text.find(".input"), std::string::npos);
  EXPECT_EQ(text.find(".output"), std::string::npos);
  EXPECT_NE(text.find(".decl edge"), std::string::npos);
}

TEST(SoufflePrinterOptionsTest, CommentsCanBeSuppressed) {
  dlir::SouffleOptions options;
  options.emit_comments = false;
  std::string text = dlir::ToSouffle(Parse(R"(
.decl d(x: number, v: number) @min
)"), options);
  EXPECT_EQ(text.find("lattice relation"), std::string::npos);
  // The subsumption clause itself is still emitted (it is semantics, not
  // commentary).
  EXPECT_NE(text.find("<="), std::string::npos);
}

TEST(SqlPrinterOptionsTest, CommentsNameSourcePredicates) {
  auto sqir = sqir::TranslateToSqir(Parse(kTc));
  ASSERT_TRUE(sqir.ok());
  sqir::SqlPrintOptions options;
  options.emit_comments = true;
  std::string sql = sqir::ToSql(*sqir, options);
  EXPECT_NE(sql.find("-- V1 implements tc"), std::string::npos);
}

TEST(SqlPrinterOptionsTest, UnionAllMode) {
  auto sqir = sqir::TranslateToSqir(Parse(kTc));
  ASSERT_TRUE(sqir.ok());
  sqir::SqlPrintOptions options;
  options.union_all = true;
  std::string sql = sqir::ToSql(*sqir, options);
  EXPECT_NE(sql.find("UNION ALL"), std::string::npos);
}

TEST(MagicSetsApiTest, RejectsBadAdornment) {
  auto program = Parse(kTc);
  auto result = opt::ApplyMagicSetsTo(program, "tc", "bfx");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(opt::ApplyMagicSetsTo(program, "ghost", "bf").ok());
}

TEST(MagicSetsApiTest, AllFreeAdornmentIsIdentity) {
  auto program = Parse(kTc);
  auto result = opt::ApplyMagicSetsTo(program, "tc", "ff");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rules.size(), program.rules.size());
}

TEST(MagicSetsApiTest, NoCallSiteIsIdentity) {
  // tc is output itself; no output rule *calls* it with constants.
  auto program = Parse(kTc);
  auto result = opt::ApplyMagicSetsTo(program, "tc", "bf");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->FindDecl("m_tc_bf"), nullptr);
}

TEST(DlirParserErrorsTest, PositionsAndMessages) {
  auto missing_dot = dlir::ParseProgram(".decl a(x: number)\na(1)");
  ASSERT_FALSE(missing_dot.ok());
  EXPECT_NE(missing_dot.status().message().find("line 2"), std::string::npos);

  auto bad_cmp = dlir::ParseProgram(R"(
.decl a(x: number)
.decl b(x: number)
b(x) :- a(x), x ~ 3.
)");
  EXPECT_FALSE(bad_cmp.ok());

  auto negative = dlir::ParseProgram(R"(
.decl a(x: number)
a(-5).
)");
  ASSERT_TRUE(negative.ok()) << negative.status().ToString();
  // -5 parses as 0 - 5 (constant-foldable by the optimizer).
  EXPECT_EQ(negative->rules[0].head.args[0].kind, dlir::TermKind::kBinary);
}

TEST(DlirParserErrorsTest, BlockCommentsAndLineComments) {
  auto program = dlir::ParseProgram(R"(
// line comment
.decl a(x: number) /* block
   spanning lines */
.decl b(x: number)
b(x) :- a(x).  // trailing
)");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->rules.size(), 1u);
}

}  // namespace
}  // namespace raqlet
