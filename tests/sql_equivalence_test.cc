// Randomized differential test for the SQL executor: kVectorized must be
// bit-identical (columns, rows, AND row order) to kTuplePipeline over
// generated join / filter / arithmetic / aggregate / negation / recursive
// programs, at 1 thread and with batches partitioned across 4 threads.
// Runs in the asan and tsan CI legs (the tsan leg exercises the parallel
// batch pipeline under the race detector).

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "dlir/parser.h"
#include "engine/sql/executor.h"
#include "sqir/dlir_to_sqir.h"

namespace raqlet::engine {
namespace {

sqir::SqirProgram Translate(const std::string& text) {
  auto program = dlir::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  auto sqir = sqir::TranslateToSqir(*std::move(program));
  EXPECT_TRUE(sqir.ok()) << sqir.status().ToString();
  return std::move(sqir).value();
}

// edge(x, y), blocked(x): random graph data sized so that recursive cases
// cross the executor's parallel-chunking threshold.
Database MakeDb(std::mt19937& rng, int nodes, int edges) {
  Database db;
  RelationSchema es;
  es.name = "edge";
  es.columns = {{"x", ValueType::kNumber}, {"y", ValueType::kNumber}};
  Relation* edge = *db.CreateRelation(es);
  std::uniform_int_distribution<int> pick(1, nodes);
  for (int i = 0; i < edges; ++i) {
    edge->Insert({Value::Number(pick(rng)), Value::Number(pick(rng))});
  }
  RelationSchema bs;
  bs.name = "blocked";
  bs.columns = {{"x", ValueType::kNumber}};
  Relation* blocked = *db.CreateRelation(bs);
  for (int i = 0; i < nodes / 4; ++i) {
    blocked->Insert({Value::Number(pick(rng))});
  }
  return db;
}

const char* kDecls = R"(
.decl edge(x: number, y: number)
.input edge
.decl blocked(x: number)
.input blocked
)";

std::vector<std::string> ProgramShapes(std::mt19937& rng, int nodes) {
  std::uniform_int_distribution<int> pick(1, nodes);
  const std::string k = std::to_string(pick(rng));
  return {
      // Two-hop join.
      ".decl out(x: number, z: number)\n.output out\n"
      "out(x, z) :- edge(x, y), edge(y, z).\n",
      // Filter.
      ".decl out(x: number, y: number)\n.output out\n"
      "out(x, y) :- edge(x, y), x < y.\n",
      // Arithmetic in SELECT and WHERE.
      ".decl out(s: number)\n.output out\n"
      "out(s) :- edge(x, y), s = x + y * 2, s > " + k + ".\n",
      // Aggregates.
      ".decl out(x: number, c: number)\n.output out\n"
      "out(x, count(y)) :- edge(x, y).\n",
      ".decl out(x: number, s: number)\n.output out\n"
      "out(x, sum(y)) :- edge(x, y).\n",
      ".decl out(x: number, m: number)\n.output out\n"
      "out(x, max(y)) :- edge(x, y).\n",
      // Negation.
      ".decl out(x: number, y: number)\n.output out\n"
      "out(x, y) :- edge(x, y), !blocked(y).\n",
      // Transitive closure.
      ".decl tc(x: number, y: number)\n.output tc\n"
      "tc(x, y) :- edge(x, y).\n"
      "tc(x, y) :- tc(x, z), edge(z, y).\n",
      // Recursive + filter + negation.
      ".decl tc(x: number, y: number)\n.output tc\n"
      "tc(x, y) :- edge(x, y), x != y.\n"
      "tc(x, y) :- tc(x, z), edge(z, y), !blocked(y), y < " + k + ".\n",
  };
}

TEST(SqlEquivalenceTest, RandomizedVectorizedMatchesTuplePipeline) {
  SqlOptions tuple_options;
  tuple_options.mode = SqlMode::kTuplePipeline;
  SqlEngine tuple_engine(tuple_options);
  SqlOptions vec_options;
  vec_options.mode = SqlMode::kVectorized;
  SqlEngine vec_engine(vec_options);
  SqlOptions par_options;
  par_options.mode = SqlMode::kVectorized;
  par_options.num_threads = 4;
  SqlEngine par_engine(par_options);

  std::mt19937 rng(20260728);
  for (int trial = 0; trial < 20; ++trial) {
    // The last trials are big enough that the 4-thread engine splits the
    // leading scan into multiple chunks (>= 2 * 64 rows).
    const int nodes = trial < 15 ? 10 + trial * 2 : 60 + trial * 10;
    const int num_edges = nodes * 3;
    Database db = MakeDb(rng, nodes, num_edges);
    for (const std::string& shape : ProgramShapes(rng, nodes)) {
      const std::string text = std::string(kDecls) + shape;
      sqir::SqirProgram program = Translate(text);

      auto reference = tuple_engine.Run(program, &db);
      ASSERT_TRUE(reference.ok())
          << reference.status().ToString() << "\n" << text;
      auto serial = vec_engine.Run(program, &db);
      ASSERT_TRUE(serial.ok()) << serial.status().ToString() << "\n" << text;
      auto parallel = par_engine.Run(program, &db);
      ASSERT_TRUE(parallel.ok())
          << parallel.status().ToString() << "\n" << text;

      EXPECT_EQ(reference->columns, serial->columns) << text;
      EXPECT_EQ(reference->rows, serial->rows)
          << "kVectorized diverged from kTuplePipeline on trial " << trial
          << ":\n" << text;
      EXPECT_EQ(serial->columns, parallel->columns) << text;
      EXPECT_EQ(serial->rows, parallel->rows)
          << "4-thread kVectorized diverged from serial on trial " << trial
          << ":\n" << text;
    }
  }
}

}  // namespace
}  // namespace raqlet::engine
