// Parser robustness: every frontend must return a Status (never crash,
// hang, or throw) on arbitrary garbage — random token soups and random
// mutations of valid inputs.

#include <gtest/gtest.h>

#include <random>

#include "cypher/parser.h"
#include "dlir/parser.h"
#include "schema/pg_schema.h"
#include "sqlpgq/parser.h"

namespace raqlet {
namespace {

const char* const kTokenPool[] = {
    "MATCH",  "WHERE",  "RETURN", "WITH",   "DISTINCT", "FILTER", "AS",
    "(",      ")",      "[",      "]",      "{",        "}",      ",",
    ":",      "-",      "->",     "<-",     "*",        "..",     "=",
    "<>",     "<=",     ".",      "n",      "Person",   "id",     "42",
    "3.5",    "\"x\"",  "$p",     "count",  "shortestPath", "IS",
    ".decl",  ".input", ".output", ":-",    "!",        "+",      "/",
    "number", "symbol", "@min",   "SELECT", "FROM",     "GRAPH_TABLE",
    "COLUMNS", "AND",   "OR",     "NOT",
};

std::string RandomTokenSoup(std::mt19937* rng, int length) {
  std::uniform_int_distribution<size_t> pick(0, std::size(kTokenPool) - 1);
  std::string out;
  for (int i = 0; i < length; ++i) {
    out += kTokenPool[pick(*rng)];
    out += ' ';
  }
  return out;
}

std::string Mutate(const std::string& input, std::mt19937* rng) {
  std::string out = input;
  std::uniform_int_distribution<int> op(0, 2);
  for (int i = 0; i < 4 && !out.empty(); ++i) {
    std::uniform_int_distribution<size_t> pos(0, out.size() - 1);
    size_t p = pos(*rng);
    switch (op(*rng)) {
      case 0:
        out.erase(p, 1);
        break;
      case 1:
        out.insert(p, 1, out[pos(*rng)]);
        break;
      default:
        out[p] = "(){}[],.:-*"[pos(*rng) % 11];
        break;
    }
  }
  return out;
}

class ParserFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzzTest, TokenSoupNeverCrashes) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 97 + 13);
  for (int i = 0; i < 50; ++i) {
    std::string soup = RandomTokenSoup(&rng, 2 + i % 40);
    // Each call must return; the result (ok or error) is irrelevant.
    (void)cypher::ParseQuery(soup);
    (void)dlir::ParseProgram(soup);
    (void)schema::ParsePgSchema(soup);
    (void)sqlpgq::ParseQuery(soup);
  }
  SUCCEED();
}

TEST_P(ParserFuzzTest, MutatedValidInputsNeverCrash) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 131 + 7);
  const std::string valid_cypher =
      "MATCH (n:Person {id: 42})-[:KNOWS*1..3]->(m:Person) WHERE m.age > 10 "
      "RETURN DISTINCT m.name AS name, count(n) AS c";
  const std::string valid_datalog =
      ".decl e(x: number, y: number)\n.input e\n.decl t(x: number, y: "
      "number)\n.output t\nt(x, y) :- e(x, y).\nt(x, y) :- t(x, z), e(z, "
      "y).";
  const std::string valid_schema =
      "CREATE GRAPH { (a: A {id INT}), (:a)-[e: rel {id INT}]->(:a) }";
  const std::string valid_pgq =
      "SELECT * FROM GRAPH_TABLE (g, MATCH (n IS A WHERE n.id = 1) COLUMNS "
      "(n.id AS id))";
  for (int i = 0; i < 50; ++i) {
    (void)cypher::ParseQuery(Mutate(valid_cypher, &rng));
    (void)dlir::ParseProgram(Mutate(valid_datalog, &rng));
    (void)schema::ParsePgSchema(Mutate(valid_schema, &rng));
    (void)sqlpgq::ParseQuery(Mutate(valid_pgq, &rng));
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace raqlet
