// Parser robustness: every frontend must return a Status (never crash,
// hang, or throw) on arbitrary garbage — random token soups and random
// mutations of valid inputs. The execution soak at the bottom extends the
// same never-crash bar through the engines with randomized QueryGuard
// budgets armed.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <utility>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/lints.h"
#include "analysis/typecheck.h"
#include "cypher/parser.h"
#include "dlir/parser.h"
#include "engine/datalog/incremental.h"
#include "opt/pass_manager.h"
#include "raqlet/compiler.h"
#include "runtime/query_guard.h"
#include "schema/pg_schema.h"
#include "sqlpgq/parser.h"

namespace raqlet {
namespace {

const char* const kTokenPool[] = {
    "MATCH",  "WHERE",  "RETURN", "WITH",   "DISTINCT", "FILTER", "AS",
    "(",      ")",      "[",      "]",      "{",        "}",      ",",
    ":",      "-",      "->",     "<-",     "*",        "..",     "=",
    "<>",     "<=",     ".",      "n",      "Person",   "id",     "42",
    "3.5",    "\"x\"",  "$p",     "count",  "shortestPath", "IS",
    ".decl",  ".input", ".output", ":-",    "!",        "+",      "/",
    "number", "symbol", "@min",   "SELECT", "FROM",     "GRAPH_TABLE",
    "COLUMNS", "AND",   "OR",     "NOT",
};

std::string RandomTokenSoup(std::mt19937* rng, int length) {
  std::uniform_int_distribution<size_t> pick(0, std::size(kTokenPool) - 1);
  std::string out;
  for (int i = 0; i < length; ++i) {
    out += kTokenPool[pick(*rng)];
    out += ' ';
  }
  return out;
}

std::string Mutate(const std::string& input, std::mt19937* rng) {
  std::string out = input;
  std::uniform_int_distribution<int> op(0, 2);
  for (int i = 0; i < 4 && !out.empty(); ++i) {
    std::uniform_int_distribution<size_t> pos(0, out.size() - 1);
    size_t p = pos(*rng);
    switch (op(*rng)) {
      case 0:
        out.erase(p, 1);
        break;
      case 1:
        out.insert(p, 1, out[pos(*rng)]);
        break;
      default:
        out[p] = "(){}[],.:-*"[pos(*rng) % 11];
        break;
    }
  }
  return out;
}

class ParserFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzzTest, TokenSoupNeverCrashes) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 97 + 13);
  for (int i = 0; i < 50; ++i) {
    std::string soup = RandomTokenSoup(&rng, 2 + i % 40);
    // Each call must return; the result (ok or error) is irrelevant.
    (void)cypher::ParseQuery(soup);
    (void)dlir::ParseProgram(soup);
    (void)schema::ParsePgSchema(soup);
    (void)sqlpgq::ParseQuery(soup);
  }
  SUCCEED();
}

TEST_P(ParserFuzzTest, MutatedValidInputsNeverCrash) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 131 + 7);
  const std::string valid_cypher =
      "MATCH (n:Person {id: 42})-[:KNOWS*1..3]->(m:Person) WHERE m.age > 10 "
      "RETURN DISTINCT m.name AS name, count(n) AS c";
  const std::string valid_datalog =
      ".decl e(x: number, y: number)\n.input e\n.decl t(x: number, y: "
      "number)\n.output t\nt(x, y) :- e(x, y).\nt(x, y) :- t(x, z), e(z, "
      "y).";
  const std::string valid_schema =
      "CREATE GRAPH { (a: A {id INT}), (:a)-[e: rel {id INT}]->(:a) }";
  const std::string valid_pgq =
      "SELECT * FROM GRAPH_TABLE (g, MATCH (n IS A WHERE n.id = 1) COLUMNS "
      "(n.id AS id))";
  for (int i = 0; i < 50; ++i) {
    (void)cypher::ParseQuery(Mutate(valid_cypher, &rng));
    (void)dlir::ParseProgram(Mutate(valid_datalog, &rng));
    (void)schema::ParsePgSchema(Mutate(valid_schema, &rng));
    (void)sqlpgq::ParseQuery(Mutate(valid_pgq, &rng));
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Static analyzer as a fuzz oracle
// ---------------------------------------------------------------------------

/// Random syntactically-well-formed DLIR, built directly on the AST so the
/// fuzzer reaches shapes the parser would reject or never emit (negative
/// agg positions, empty-column decls, lattice on anything, duplicate
/// names, unbound everything). The analyzer must return diagnostics on all
/// of them — never crash.
dlir::Program RandomProgram(std::mt19937* rng) {
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> small(0, 3);
  std::uniform_int_distribution<int> type_pick(0, 2);
  const ValueType kTypes[] = {ValueType::kNumber, ValueType::kSymbol,
                              ValueType::kBool};
  const char* const kNames[] = {"p", "q", "r", "s"};

  dlir::Program program;
  int num_decls = 1 + small(*rng);
  for (int i = 0; i < num_decls; ++i) {
    dlir::RelationDecl decl;
    decl.name = kNames[i % 4];  // collisions on purpose (RQ001 territory)
    int arity = small(*rng);    // zero-arity decls included
    for (int c = 0; c < arity; ++c) {
      decl.columns.push_back(
          {"c" + std::to_string(c), kTypes[type_pick(*rng)]});
    }
    decl.is_input = coin(*rng) == 1;
    decl.is_output = coin(*rng) == 1;
    if (small(*rng) == 0) {
      decl.lattice = coin(*rng) == 1 ? dlir::LatticeKind::kMin
                                     : dlir::LatticeKind::kMax;
    }
    program.decls.push_back(std::move(decl));
  }

  auto random_term = [&]() -> dlir::Term {
    switch (small(*rng)) {
      case 0:
        return dlir::Term::Var(std::string(1, static_cast<char>(
                                                  'x' + small(*rng))));
      case 1:
        return dlir::Term::Num(small(*rng));
      case 2:
        return dlir::Term::Str("s");
      default:
        return dlir::Term::Wildcard();
    }
  };
  auto random_atom = [&]() {
    dlir::Atom atom;
    atom.predicate = kNames[small(*rng) % 4];
    int arity = small(*rng);
    for (int a = 0; a < arity; ++a) atom.args.push_back(random_term());
    atom.negated = small(*rng) == 0;
    return atom;
  };

  int num_rules = small(*rng);
  for (int i = 0; i < num_rules; ++i) {
    dlir::Rule rule;
    rule.head = random_atom();
    rule.head.negated = false;
    int body = small(*rng);
    for (int b = 0; b < body; ++b) rule.body.push_back(random_atom());
    if (small(*rng) == 0) {
      dlir::Constraint c;
      c.op = static_cast<dlir::CmpOp>(small(*rng) % 6);
      c.lhs = random_term();
      c.rhs = small(*rng) == 0
                  ? dlir::Term::Binary(dlir::ArithOp::kAdd, random_term(),
                                       random_term())
                  : random_term();
      rule.constraints.push_back(std::move(c));
    }
    if (small(*rng) == 0) {
      dlir::Aggregate agg;
      agg.func = static_cast<dlir::AggFunc>(small(*rng) % 5);
      agg.arg = random_term();
      rule.agg = agg;
      rule.agg_result_pos = small(*rng) - 1;  // -1..2, often out of range
    }
    program.rules.push_back(std::move(rule));
  }
  return program;
}

class AnalyzerFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(AnalyzerFuzzTest, AnalyzerNeverCrashesOnParsedGarbage) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 211 + 3);
  for (int i = 0; i < 50; ++i) {
    auto program = dlir::ParseProgram(RandomTokenSoup(&rng, 2 + i % 40));
    if (!program.ok()) continue;
    analysis::DiagnosticEngine diags;
    analysis::CheckProgram(*program, &diags);
    analysis::LintProgram(*program, &diags);
    (void)diags.Render();
  }
  SUCCEED();
}

TEST_P(AnalyzerFuzzTest, AnalyzerSubsumesValidateOnRandomPrograms) {
  // The analyzer is the verifier the optimizer trusts, so it must be at
  // least as strict as Program::Validate(): anything it calls clean has to
  // execute past the engines' own validation. And on the wild shapes the
  // generator emits, analysis + lints must never crash.
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 157 + 11);
  for (int i = 0; i < 200; ++i) {
    dlir::Program program = RandomProgram(&rng);
    analysis::DiagnosticEngine diags;
    analysis::CheckProgram(program, &diags);
    analysis::LintProgram(program, &diags);
    if (!diags.has_errors()) {
      EXPECT_TRUE(program.Validate().ok())
          << "analyzer passed a program Validate() rejects:\n"
          << program.ToString() << "\n"
          << program.Validate().ToString();
    }
  }
}

TEST_P(AnalyzerFuzzTest, VerifiedProgramsSurvivePipelinesWithVerifyOn) {
  // Programs the verifier accepts must stay verified through every real
  // pass pipeline — an Internal status here means a pass (or the verifier)
  // is wrong, and is exactly what the pass-boundary check exists to catch.
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 89 + 41);
  opt::OptOptions verify_on;
  verify_on.verify_each_pass = true;
  for (int i = 0; i < 100; ++i) {
    dlir::Program program = RandomProgram(&rng);
    if (!analysis::VerifyProgram(program).ok()) continue;
    auto out = opt::PassManager::Aggressive().Run(program, verify_on);
    if (!out.ok()) {
      EXPECT_NE(out.status().code(), StatusCode::kInternal)
          << out.status().ToString() << "\nseed program:\n"
          << program.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalyzerFuzzTest, ::testing::Range(0, 8));

// Guard-armed execution soak: random tiny budgets and deadlines against
// real queries on every engine. Whatever the guard does, the engine must
// return a Status from the guard's terminal set or succeed — and stay
// reusable: a clean re-run must match the unguarded reference exactly.
class GuardSoakTest : public ::testing::TestWithParam<int> {};

TEST_P(GuardSoakTest, RandomBudgetsNeverCrashOrCorrupt) {
  constexpr char kSoakSchema[] = R"(
CREATE GRAPH {
  (personType: Person {id INT, age INT}),
  (:personType)-[knowsType: knows {id INT}]->(:personType)
}
)";
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 193 + 29);
  Compiler compiler;
  ASSERT_TRUE(compiler.LoadPgSchema(kSoakSchema).ok());
  Database db;
  ASSERT_TRUE(compiler.CreateEdbs(&db).ok());
  std::uniform_int_distribution<int> person(1, 25);
  Relation* person_rel = *db.GetRelation("Person");
  for (int i = 1; i <= 25; ++i) {
    person_rel->Insert({Value::Number(i), Value::Number(18 + i % 50)});
  }
  Relation* knows = *db.GetRelation("Person_KNOWS_Person");
  for (int i = 0; i < 50; ++i) {
    knows->Insert({Value::Number(person(rng)), Value::Number(person(rng)),
                   Value::Number(i + 1)});
  }

  const char* const kQueries[] = {
      "MATCH (a:Person)-[:KNOWS*]->(b:Person) "
      "RETURN DISTINCT a.id AS src, b.id AS dst",
      "MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) "
      "RETURN DISTINCT a.id AS a, c.id AS c",
      "MATCH (a:Person)-[:KNOWS*1..3]->(b:Person) WHERE a.id < 10 "
      "RETURN DISTINCT a.id AS a, b.id AS b",
  };
  auto store = compiler.BuildGraphStore(db);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  std::uniform_int_distribution<int> pick_query(0, std::size(kQueries) - 1);
  std::uniform_int_distribution<int> pick_engine(0, 2);
  std::uniform_int_distribution<int> pick_knob(0, 2);
  std::uniform_int_distribution<size_t> rows_budget(1, 300);
  std::uniform_int_distribution<size_t> bytes_budget(64, 1 << 14);

  for (int iter = 0; iter < 12; ++iter) {
    auto unit = compiler.CompileCypher(kQueries[pick_query(rng)]);
    ASSERT_TRUE(unit.ok()) << unit.status().ToString();

    runtime::QueryGuard guard;
    switch (pick_knob(rng)) {
      case 0:
        guard.set_max_rows(rows_budget(rng));
        break;
      case 1:
        guard.set_max_bytes(bytes_budget(rng));
        break;
      default:
        guard.set_max_rows(rows_budget(rng));
        guard.set_max_bytes(bytes_budget(rng));
        break;
    }

    int which = pick_engine(rng);
    auto run = [&](const runtime::QueryGuard* g)
        -> Result<engine::ResultTable> {
      switch (which) {
        case 0: {
          engine::EvalOptions options;
          options.num_threads = 1 + (iter % 2) * 3;
          options.guard = g;
          return compiler.RunOnDatalog(unit->dlir, &db, nullptr, options);
        }
        case 1:
          return compiler.RunOnSql(unit->dlir, &db,
                                   engine::SqlMode::kVectorized, nullptr,
                                   1 + (iter % 2) * 3, nullptr, g);
        default: {
          engine::GraphOptions options;
          options.guard = g;
          return compiler.RunOnGraph(unit->pgir, *store, &db, nullptr,
                                     options);
        }
      }
    };

    auto guarded = run(&guard);
    if (!guarded.ok()) {
      StatusCode code = guarded.status().code();
      EXPECT_TRUE(code == StatusCode::kResourceExhausted ||
                  code == StatusCode::kDeadlineExceeded ||
                  code == StatusCode::kCancelled)
          << guarded.status().ToString();
    }
    // Reusability after whatever the guard did: unguarded re-run matches
    // an unguarded reference run on the same engine.
    auto reference = run(nullptr);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    auto rerun = run(nullptr);
    ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
    EXPECT_EQ(rerun->rows, reference->rows);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuardSoakTest, ::testing::Range(0, 4));

// ---------------------------------------------------------------------------
// Incremental-maintenance soak: random programs × random +/− delta
// streams, with occasional tiny guard budgets armed. Every ApplyDelta
// must return a Status (never crash or hang); a guard trip must poison
// the view, and re-initializing must bring it back in sync with a
// from-scratch oracle — which the stream re-checks periodically.
// ---------------------------------------------------------------------------

class IncrementalSoakTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalSoakTest, RandomDeltaStreamsNeverCrashOrDiverge) {
  const char* const kPrograms[] = {
      // Linear recursion (DRed).
      ".decl edge(x: number, y: number)\n.input edge\n"
      ".decl tc(x: number, y: number)\n.output tc\n"
      "tc(x, y) :- edge(x, y).\ntc(x, y) :- tc(x, z), edge(z, y).\n",
      // Non-linear recursion (DRed).
      ".decl edge(x: number, y: number)\n.input edge\n"
      ".decl tc(x: number, y: number)\n.output tc\n"
      "tc(x, y) :- edge(x, y).\ntc(x, y) :- tc(x, z), tc(z, y).\n",
      // Stratified negation (counting with ¬∃ flips).
      ".decl edge(x: number, y: number)\n.input edge\n"
      ".decl oneway(x: number, y: number)\n.output oneway\n"
      "oneway(x, y) :- edge(x, y), !edge(y, x).\n",
      // Aggregation (recompute-and-diff).
      ".decl edge(x: number, y: number)\n.input edge\n"
      ".decl outdeg(x: number, d: number)\n.output outdeg\n"
      "outdeg(x, count(y)) :- edge(x, y).\n",
      // @min lattice (recompute-and-diff).
      ".decl edge(x: number, y: number)\n.input edge\n"
      ".decl dist(x: number, y: number, d: number) @min\n.output dist\n"
      "dist(x, y, 1) :- edge(x, y).\n"
      "dist(x, y, d + 1) :- dist(x, z, d), edge(z, y).\n",
  };
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 173 + 19);
  std::uniform_int_distribution<int> pick_program(0, std::size(kPrograms) - 1);
  std::uniform_int_distribution<int64_t> node(0, 7);
  std::uniform_int_distribution<int> ops(0, 3);
  std::uniform_int_distribution<int> coin(0, 1);

  for (int round = 0; round < 3; ++round) {
    auto program = dlir::ParseProgram(kPrograms[pick_program(rng)]);
    ASSERT_TRUE(program.ok()) << program.status().ToString();

    Database db;
    RelationSchema schema;
    schema.name = "edge";
    schema.columns = {{"x", ValueType::kNumber}, {"y", ValueType::kNumber}};
    Relation* edge = *db.CreateRelation(schema);
    std::set<std::pair<int64_t, int64_t>> model;
    for (int i = 0; i < 10; ++i) {
      auto [a, b] = std::pair{node(rng), node(rng)};
      model.emplace(a, b);
      edge->Insert({Value::Number(a), Value::Number(b)}).value();
    }

    engine::IncrementalOptions options;
    options.num_threads = 1 + (GetParam() % 2) * 3;
    engine::IncrementalView view(options);
    ASSERT_TRUE(view.Initialize(*program, &db).ok());

    for (int step = 0; step < 16; ++step) {
      RelationDelta rd;
      rd.relation = "edge";
      std::vector<std::pair<int64_t, int64_t>> adds, removes;
      for (int i = ops(rng); i > 0; --i) adds.emplace_back(node(rng), node(rng));
      for (int i = ops(rng); i > 0; --i) {
        removes.emplace_back(node(rng), node(rng));
      }
      std::set<std::pair<int64_t, int64_t>> add_set(adds.begin(), adds.end());
      for (auto& p : removes) {
        rd.removes.push_back({Value::Number(p.first), Value::Number(p.second)});
        if (add_set.count(p) == 0) model.erase(p);
      }
      for (auto& p : adds) {
        rd.adds.push_back({Value::Number(p.first), Value::Number(p.second)});
        model.insert(p);
      }
      DeltaBatch batch;
      batch.relations.push_back(std::move(rd));

      // Occasionally arm a starvation-level guard: the delta either
      // completes or trips with a terminal status and poisons the view.
      runtime::QueryGuard guard;
      bool armed = coin(rng) == 1 && step % 5 == 4;
      if (armed) guard.set_max_rows(1);
      auto applied = view.ApplyDelta(batch, nullptr, armed ? &guard : nullptr);
      if (!applied.ok()) {
        StatusCode code = applied.status().code();
        EXPECT_TRUE(code == StatusCode::kResourceExhausted ||
                    code == StatusCode::kDeadlineExceeded ||
                    code == StatusCode::kCancelled)
            << applied.status().ToString();
        // Poisoned until re-initialized; Initialize re-syncs from the
        // (fully applied) base facts.
        EXPECT_EQ(view.ApplyDelta(batch).status().code(),
                  StatusCode::kInvalidArgument);
        ASSERT_TRUE(view.Initialize(*program, &db).ok());
      }

      if (step % 4 == 3) {
        // Differential oracle: from-scratch evaluation on the modeled
        // base facts matches the maintained database for every relation.
        Database oracle;
        Relation* oedge = *oracle.CreateRelation(schema);
        for (auto& [a, b] : model) {
          oedge->Insert({Value::Number(a), Value::Number(b)}).value();
        }
        engine::DatalogEngine eng;
        ASSERT_TRUE(eng.Run(*program, &oracle).ok());
        for (const dlir::RelationDecl& decl : program->decls) {
          auto sorted_rows = [](const Relation& rel) {
            std::vector<Tuple> rows = rel.MaterializeRows();
            std::sort(rows.begin(), rows.end(),
                      [](const Tuple& a, const Tuple& b) {
                        for (size_t i = 0; i < a.size(); ++i) {
                          if (a[i].AsNumber() != b[i].AsNumber()) {
                            return a[i].AsNumber() < b[i].AsNumber();
                          }
                        }
                        return false;
                      });
            return rows;
          };
          EXPECT_EQ(sorted_rows(**db.GetRelation(decl.name)),
                    sorted_rows(**oracle.GetRelation(decl.name)))
              << "relation " << decl.name << " diverged at step " << step;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalSoakTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace raqlet
