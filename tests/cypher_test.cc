// Tests for the Cypher parser (frontend of Fig. 1).

#include <gtest/gtest.h>

#include "cypher/parser.h"

namespace raqlet::cypher {
namespace {

constexpr char kSq1[] = R"(
MATCH (n:Person {id: 42})-[:IS_LOCATED_IN]->(p:City)
RETURN DISTINCT n.firstName AS firstName, p.id AS cityId
)";

TEST(CypherParserTest, ParsesPaperSq1) {
  auto query = ParseQuery(kSq1);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_EQ(query->clauses.size(), 2u);
  const auto& match = std::get<MatchClause>(query->clauses[0]);
  ASSERT_EQ(match.patterns.size(), 1u);
  const PathPattern& path = match.patterns[0];
  EXPECT_EQ(path.start.var, "n");
  EXPECT_EQ(path.start.label, "Person");
  ASSERT_EQ(path.start.properties.size(), 1u);
  EXPECT_EQ(path.start.properties[0].first, "id");
  ASSERT_EQ(path.steps.size(), 1u);
  EXPECT_EQ(path.steps[0].first.type, "IS_LOCATED_IN");
  EXPECT_EQ(path.steps[0].first.direction, EdgeDirection::kOutgoing);
  EXPECT_EQ(path.steps[0].second.label, "City");
  const auto& ret = std::get<ReturnClause>(query->clauses[1]);
  EXPECT_TRUE(ret.distinct);
  ASSERT_EQ(ret.items.size(), 2u);
  EXPECT_EQ(ret.items[0].alias, "firstName");
  EXPECT_EQ(ret.items[0].expr.kind, ExprKind::kProperty);
}

TEST(CypherParserTest, ParsesDirections) {
  auto query = ParseQuery(
      "MATCH (a)-[:X]->(b), (c)<-[:Y]-(d), (e)-[:Z]-(f) RETURN a");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  const auto& match = std::get<MatchClause>(query->clauses[0]);
  ASSERT_EQ(match.patterns.size(), 3u);
  EXPECT_EQ(match.patterns[0].steps[0].first.direction,
            EdgeDirection::kOutgoing);
  EXPECT_EQ(match.patterns[1].steps[0].first.direction,
            EdgeDirection::kIncoming);
  EXPECT_EQ(match.patterns[2].steps[0].first.direction,
            EdgeDirection::kUndirected);
}

TEST(CypherParserTest, ParsesBareArrows) {
  auto query = ParseQuery("MATCH (a)-->(b)<--(c)--(d) RETURN a");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  const auto& match = std::get<MatchClause>(query->clauses[0]);
  ASSERT_EQ(match.patterns[0].steps.size(), 3u);
  EXPECT_EQ(match.patterns[0].steps[0].first.direction,
            EdgeDirection::kOutgoing);
  EXPECT_EQ(match.patterns[0].steps[1].first.direction,
            EdgeDirection::kIncoming);
  EXPECT_EQ(match.patterns[0].steps[2].first.direction,
            EdgeDirection::kUndirected);
}

TEST(CypherParserTest, ParsesVariableLength) {
  auto query = ParseQuery("MATCH (a)-[:KNOWS*1..3]->(b) RETURN a");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  const auto& edge =
      std::get<MatchClause>(query->clauses[0]).patterns[0].steps[0].first;
  EXPECT_TRUE(edge.variable_length);
  EXPECT_EQ(edge.min_hops, 1);
  EXPECT_EQ(edge.max_hops, 3);
}

TEST(CypherParserTest, VariableLengthForms) {
  struct Case {
    const char* pattern;
    int min;
    int max;
  };
  for (const Case& c : {Case{"*", 1, EdgePattern::kUnboundedHops},
                        Case{"*2", 2, 2},
                        Case{"*2..", 2, EdgePattern::kUnboundedHops},
                        Case{"*..4", 1, 4},
                        Case{"*0..2", 0, 2}}) {
    std::string q = std::string("MATCH (a)-[:K") + c.pattern +
                    "]->(b) RETURN a";
    auto query = ParseQuery(q);
    ASSERT_TRUE(query.ok()) << q << ": " << query.status().ToString();
    const auto& edge =
        std::get<MatchClause>(query->clauses[0]).patterns[0].steps[0].first;
    EXPECT_TRUE(edge.variable_length) << q;
    EXPECT_EQ(edge.min_hops, c.min) << q;
    EXPECT_EQ(edge.max_hops, c.max) << q;
  }
}

TEST(CypherParserTest, ParsesShortestPath) {
  auto query = ParseQuery(
      "MATCH p = shortestPath((a:Person)-[:KNOWS*]-(b:Person)) "
      "RETURN length(p)");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  const auto& path = std::get<MatchClause>(query->clauses[0]).patterns[0];
  EXPECT_TRUE(path.shortest);
  EXPECT_EQ(path.path_var, "p");
  const auto& ret = std::get<ReturnClause>(query->clauses[1]);
  EXPECT_EQ(ret.items[0].expr.kind, ExprKind::kCall);
  EXPECT_EQ(ret.items[0].expr.function, "length");
}

TEST(CypherParserTest, ParsesWhereWithBooleanOperators) {
  auto query = ParseQuery(
      "MATCH (n:Person) WHERE n.age > 30 AND (n.name = \"Ada\" OR NOT "
      "n.id <> 7) RETURN n");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  const auto& match = std::get<MatchClause>(query->clauses[0]);
  ASSERT_TRUE(match.where.has_value());
  EXPECT_EQ(match.where->bin_op, BinOp::kAnd);
}

TEST(CypherParserTest, ParsesWithAggregation) {
  auto query = ParseQuery(
      "MATCH (n:Person)-[:KNOWS]->(m:Person) "
      "WITH n, count(m) AS friends WHERE friends > 3 "
      "RETURN DISTINCT n, friends");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  const auto& with = std::get<WithClause>(query->clauses[1]);
  ASSERT_EQ(with.items.size(), 2u);
  EXPECT_TRUE(with.items[1].expr.IsAggregateCall());
  EXPECT_TRUE(with.where.has_value());
}

TEST(CypherParserTest, ParsesCountStarAndDistinctArg) {
  auto query = ParseQuery("MATCH (n:A) RETURN count(*) AS c1, "
                          "count(DISTINCT n) AS c2");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  const auto& ret = std::get<ReturnClause>(query->clauses[1]);
  EXPECT_TRUE(ret.items[0].expr.star_arg);
  EXPECT_TRUE(ret.items[1].expr.distinct_arg);
}

TEST(CypherParserTest, ParsesOrderByLimit) {
  auto query = ParseQuery(
      "MATCH (n:Person) RETURN n.name AS name ORDER BY name DESC, n.id "
      "SKIP 5 LIMIT 10");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  const auto& ret = std::get<ReturnClause>(query->clauses[1]);
  ASSERT_EQ(ret.order_by.size(), 2u);
  EXPECT_FALSE(ret.order_by[0].ascending);
  EXPECT_TRUE(ret.order_by[1].ascending);
  EXPECT_EQ(ret.skip, 5);
  EXPECT_EQ(ret.limit, 10);
}

TEST(CypherParserTest, ParsesParameters) {
  auto query = ParseQuery("MATCH (n:Person {id: $personId}) RETURN n");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  const auto& props =
      std::get<MatchClause>(query->clauses[0]).patterns[0].start.properties;
  ASSERT_EQ(props.size(), 1u);
  EXPECT_EQ(props[0].second.kind, ExprKind::kParameter);
  EXPECT_EQ(props[0].second.parameter, "personId");
}

TEST(CypherParserTest, KeywordsAreCaseInsensitive) {
  auto query = ParseQuery("match (n:A) return distinct n");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_TRUE(std::get<ReturnClause>(query->clauses[1]).distinct);
}

TEST(CypherParserTest, RejectsMissingReturn) {
  auto query = ParseQuery("MATCH (n:A)");
  ASSERT_FALSE(query.ok());
  EXPECT_NE(query.status().message().find("RETURN"), std::string::npos);
}

TEST(CypherParserTest, RejectsBidirectionalEdge) {
  EXPECT_FALSE(ParseQuery("MATCH (a)<-[:X]->(b) RETURN a").ok());
}

TEST(CypherParserTest, RejectsGarbage) {
  EXPECT_FALSE(ParseQuery("FROBNICATE (n)").ok());
  EXPECT_FALSE(ParseQuery("MATCH (n:A RETURN n").ok());
}

TEST(CypherParserTest, RoundTripsThroughToString) {
  auto query = ParseQuery(kSq1);
  ASSERT_TRUE(query.ok());
  auto reparsed = ParseQuery(query->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                             << query->ToString();
  EXPECT_EQ(reparsed->ToString(), query->ToString());
}

TEST(CypherParserTest, ParsesMultiHopChain) {
  auto query = ParseQuery(
      "MATCH (a:Person)-[:KNOWS]->(b:Person)<-[:HAS_CREATOR]-(m:Post) "
      "RETURN b, m");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  const auto& path = std::get<MatchClause>(query->clauses[0]).patterns[0];
  ASSERT_EQ(path.steps.size(), 2u);
  EXPECT_EQ(path.steps[1].first.direction, EdgeDirection::kIncoming);
}

}  // namespace
}  // namespace raqlet::cypher
