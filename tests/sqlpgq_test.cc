// Tests for the SQL/PGQ frontend (ISO 9075-16 GRAPH_TABLE core) and its
// integration with the shared pipeline.

#include <gtest/gtest.h>

#include "raqlet/compiler.h"
#include "sqlpgq/parser.h"

namespace raqlet::sqlpgq {
namespace {

constexpr char kSq1Pgq[] = R"(
SELECT DISTINCT *
FROM GRAPH_TABLE (social,
  MATCH (n IS Person WHERE n.id = 42)-[IS isLocatedIn]->(c IS City)
  COLUMNS (n.firstName AS firstName, c.id AS cityId)
)
)";

TEST(SqlPgqParserTest, ParsesGraphTable) {
  auto pgq = ParseQuery(kSq1Pgq);
  ASSERT_TRUE(pgq.ok()) << pgq.status().ToString();
  EXPECT_EQ(pgq->graph_name, "social");
  ASSERT_EQ(pgq->query.clauses.size(), 2u);
  const auto& match = std::get<cypher::MatchClause>(pgq->query.clauses[0]);
  ASSERT_EQ(match.patterns.size(), 1u);
  EXPECT_EQ(match.patterns[0].start.var, "n");
  EXPECT_EQ(match.patterns[0].start.label, "Person");
  // Element WHERE became the MATCH predicate.
  ASSERT_TRUE(match.where.has_value());
  EXPECT_EQ(match.where->ToString(), "(n.id = 42)");
  const auto& ret = std::get<cypher::ReturnClause>(pgq->query.clauses[1]);
  EXPECT_TRUE(ret.distinct);
  ASSERT_EQ(ret.items.size(), 2u);
  EXPECT_EQ(ret.items[0].alias, "firstName");
}

TEST(SqlPgqParserTest, OuterProjectionSelectsSubset) {
  auto pgq = ParseQuery(R"(
SELECT cityId
FROM GRAPH_TABLE (g,
  MATCH (n IS Person)-[IS isLocatedIn]->(c IS City)
  COLUMNS (n.firstName AS firstName, c.id AS cityId)
) AS gt
)");
  ASSERT_TRUE(pgq.ok()) << pgq.status().ToString();
  const auto& ret = std::get<cypher::ReturnClause>(pgq->query.clauses[1]);
  ASSERT_EQ(ret.items.size(), 1u);
  EXPECT_EQ(ret.items[0].alias, "cityId");
}

TEST(SqlPgqParserTest, RejectsUnknownOuterColumn) {
  auto pgq = ParseQuery(R"(
SELECT ghost
FROM GRAPH_TABLE (g,
  MATCH (n IS Person)
  COLUMNS (n.id AS id)
)
)");
  ASSERT_FALSE(pgq.ok());
  EXPECT_EQ(pgq.status().code(), StatusCode::kInvalidArgument);
}

TEST(SqlPgqParserTest, QuantifiedEdgeBecomesVariableLength) {
  auto pgq = ParseQuery(R"(
SELECT * FROM GRAPH_TABLE (g,
  MATCH (a IS Person)-[IS knows]->{1,3}(b IS Person)
  COLUMNS (b.id AS id)
)
)");
  ASSERT_TRUE(pgq.ok()) << pgq.status().ToString();
  const auto& edge =
      std::get<cypher::MatchClause>(pgq->query.clauses[0]).patterns[0]
          .steps[0].first;
  EXPECT_TRUE(edge.variable_length);
  EXPECT_EQ(edge.min_hops, 1);
  EXPECT_EQ(edge.max_hops, 3);
}

TEST(SqlPgqParserTest, OpenEndedQuantifier) {
  auto pgq = ParseQuery(R"(
SELECT * FROM GRAPH_TABLE (g,
  MATCH (a IS Person WHERE a.id = 1)-[IS knows]->{2,}(b IS Person)
  COLUMNS (b.id AS id)
)
)");
  ASSERT_TRUE(pgq.ok()) << pgq.status().ToString();
  const auto& edge =
      std::get<cypher::MatchClause>(pgq->query.clauses[0]).patterns[0]
          .steps[0].first;
  EXPECT_EQ(edge.min_hops, 2);
  EXPECT_EQ(edge.max_hops, cypher::EdgePattern::kUnboundedHops);
}

TEST(SqlPgqParserTest, AnyShortestMarksPath) {
  auto pgq = ParseQuery(R"(
SELECT * FROM GRAPH_TABLE (g,
  MATCH ANY SHORTEST (a IS Person)-[IS knows]->{1,}(b IS Person)
  COLUMNS (b.id AS id)
)
)");
  ASSERT_TRUE(pgq.ok()) << pgq.status().ToString();
  EXPECT_TRUE(std::get<cypher::MatchClause>(pgq->query.clauses[0])
                  .patterns[0].shortest);
}

TEST(SqlPgqParserTest, RejectsMalformedStatements) {
  EXPECT_FALSE(ParseQuery("SELECT * FROM persons").ok());
  EXPECT_FALSE(ParseQuery(
      "SELECT * FROM GRAPH_TABLE (g, MATCH (n IS A))").ok());  // no COLUMNS
}

TEST(SqlPgqIntegrationTest, CompilesAndMatchesCypherResults) {
  Compiler compiler;
  ASSERT_TRUE(compiler.LoadPgSchema(R"(
CREATE GRAPH {
  (personType: Person {id INT, firstName STRING}),
  (cityType: City {id INT, name STRING}),
  (:personType)-[locationType: isLocatedIn {id INT}]->(:cityType)
}
)").ok());
  Database db;
  ASSERT_TRUE(compiler.CreateEdbs(&db).ok());
  Relation* person = *db.GetRelation("Person");
  person->Insert({Value::Number(42), db.Str("Ada")});
  person->Insert({Value::Number(7), db.Str("Bob")});
  Relation* city = *db.GetRelation("City");
  city->Insert({Value::Number(100), db.Str("Edinburgh")});
  Relation* located = *db.GetRelation("Person_IS_LOCATED_IN_City");
  located->Insert({Value::Number(42), Value::Number(100), Value::Number(1)});

  auto pgq_unit = compiler.CompileSqlPgq(kSq1Pgq);
  ASSERT_TRUE(pgq_unit.ok()) << pgq_unit.status().ToString();
  auto cypher_unit = compiler.CompileCypher(
      "MATCH (n:Person {id: 42})-[:IS_LOCATED_IN]->(c:City) "
      "RETURN DISTINCT n.firstName AS firstName, c.id AS cityId");
  ASSERT_TRUE(cypher_unit.ok());

  auto pgq_result = compiler.RunOnDatalog(pgq_unit->optimized, &db);
  ASSERT_TRUE(pgq_result.ok()) << pgq_result.status().ToString();
  auto cypher_result = compiler.RunOnDatalog(cypher_unit->optimized, &db);
  ASSERT_TRUE(cypher_result.ok());
  EXPECT_EQ(pgq_result->ToStringSet(db.symbols()),
            cypher_result->ToStringSet(db.symbols()));
  EXPECT_EQ(pgq_result->ToStringSet(db.symbols()),
            (std::set<std::string>{"(\"Ada\", 100)"}));
}

}  // namespace
}  // namespace raqlet::sqlpgq
