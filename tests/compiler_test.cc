// Tests for the raqlet::Compiler driver (the public API) and the GQL
// frontend.

#include <gtest/gtest.h>

#include "gql/parser.h"
#include "ldbc/ldbc.h"
#include "raqlet/compiler.h"

namespace raqlet {
namespace {

constexpr char kSchema[] = R"(
CREATE GRAPH {
  (personType: Person {id INT, firstName STRING}),
  (cityType: City {id INT, name STRING}),
  (:personType)-[locationType: isLocatedIn {id INT}]->(:cityType),
  (:personType)-[knowsType: knows {id INT}]->(:personType)
}
)";

Database SmallDb(Compiler* compiler) {
  Database db;
  EXPECT_TRUE(compiler->CreateEdbs(&db).ok());
  Relation* person = *db.GetRelation("Person");
  person->Insert({Value::Number(1), db.Str("Ada")});
  person->Insert({Value::Number(2), db.Str("Bob")});
  Relation* city = *db.GetRelation("City");
  city->Insert({Value::Number(10), db.Str("Edinburgh")});
  Relation* located = *db.GetRelation("Person_IS_LOCATED_IN_City");
  located->Insert({Value::Number(1), Value::Number(10), Value::Number(1)});
  Relation* knows = *db.GetRelation("Person_KNOWS_Person");
  knows->Insert({Value::Number(1), Value::Number(2), Value::Number(2)});
  return db;
}

TEST(CompilerTest, RequiresSchemaBeforeCompile) {
  Compiler compiler;
  auto unit = compiler.CompileCypher("MATCH (n:Person) RETURN DISTINCT n");
  ASSERT_FALSE(unit.ok());
  EXPECT_EQ(unit.status().code(), StatusCode::kInvalidArgument);
}

TEST(CompilerTest, CompileCarriesEveryStage) {
  Compiler compiler;
  ASSERT_TRUE(compiler.LoadPgSchema(kSchema).ok());
  auto unit = compiler.CompileCypher(
      "MATCH (n:Person {id: 1})-[:IS_LOCATED_IN]->(c:City) "
      "RETURN DISTINCT n.firstName AS name, c.name AS city");
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  EXPECT_FALSE(unit->pgir.ops.empty());
  EXPECT_FALSE(unit->dlir.rules.empty());
  // Standard pipeline collapses the chain to the single Return rule.
  EXPECT_EQ(unit->optimized.rules.size(), 1u);
  EXPECT_LT(unit->optimized.rules.size(), unit->dlir.rules.size());
}

TEST(CompilerTest, OptLevelZeroKeepsChain) {
  Compiler compiler;
  ASSERT_TRUE(compiler.LoadPgSchema(kSchema).ok());
  CompileOptions options;
  options.opt_level = 0;
  auto unit = compiler.CompileCypher(
      "MATCH (n:Person) RETURN DISTINCT n.firstName AS name", options);
  ASSERT_TRUE(unit.ok());
  EXPECT_EQ(unit->dlir.ToString(), unit->optimized.ToString());
}

TEST(CompilerTest, DatalogFrontendValidates) {
  Compiler compiler;
  auto ok = compiler.CompileDatalog(R"(
.decl e(x: number, y: number)
.input e
.decl t(x: number, y: number)
.output t
t(x, y) :- e(x, y).
)");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
  auto bad = compiler.CompileDatalog(".decl a(x: number)\na(y) :- a(x).");
  EXPECT_FALSE(bad.ok());
}

TEST(CompilerTest, EndToEndAcrossEngines) {
  Compiler compiler;
  ASSERT_TRUE(compiler.LoadPgSchema(kSchema).ok());
  Database db = SmallDb(&compiler);
  auto unit = compiler.CompileCypher(
      "MATCH (n:Person {id: 1})-[:IS_LOCATED_IN]->(c:City) "
      "RETURN DISTINCT n.firstName AS name, c.name AS city");
  ASSERT_TRUE(unit.ok());

  auto datalog = compiler.RunOnDatalog(unit->optimized, &db);
  ASSERT_TRUE(datalog.ok()) << datalog.status().ToString();
  ASSERT_EQ(datalog->rows.size(), 1u);
  EXPECT_EQ(datalog->columns, (std::vector<std::string>{"name", "city"}));

  auto sql = compiler.RunOnSql(unit->optimized, &db);
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  auto store = compiler.BuildGraphStore(db);
  ASSERT_TRUE(store.ok());
  auto graph = compiler.RunOnGraph(unit->pgir, *store, &db);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();

  EXPECT_EQ(datalog->ToStringSet(db.symbols()), sql->ToStringSet(db.symbols()));
  EXPECT_EQ(datalog->ToStringSet(db.symbols()),
            graph->ToStringSet(db.symbols()));
}

TEST(CompilerTest, EmittersProduceText) {
  Compiler compiler;
  ASSERT_TRUE(compiler.LoadPgSchema(kSchema).ok());
  auto unit = compiler.CompileCypher(
      "MATCH (n:Person) RETURN DISTINCT n.firstName AS name");
  ASSERT_TRUE(unit.ok());
  EXPECT_NE(compiler.EmitSouffle(unit->optimized).find(".decl"),
            std::string::npos);
  auto sql = compiler.EmitSql(unit->optimized);
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("SELECT DISTINCT"), std::string::npos);
}

TEST(CompilerTest, RunOnDatalogRequiresSingleOutput) {
  Compiler compiler;
  auto program = compiler.CompileDatalog(R"(
.decl e(x: number)
.input e
.decl a(x: number)
.decl b(x: number)
.output a
.output b
a(x) :- e(x).
b(x) :- e(x).
)");
  ASSERT_TRUE(program.ok());
  Database db;
  RelationSchema s;
  s.name = "e";
  s.columns = {{"x", ValueType::kNumber}};
  (void)db.CreateRelation(s);
  auto result = compiler.RunOnDatalog(*program, &db);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// ---- GQL frontend ----

TEST(GqlTest, FilterStatementBecomesWhere) {
  auto query = gql::ParseQuery(
      "MATCH (n:Person)-[:KNOWS]->(m:Person) FILTER n.id = 1 "
      "RETURN DISTINCT m.firstName AS name");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  const auto& match = std::get<cypher::MatchClause>(query->clauses[0]);
  ASSERT_TRUE(match.where.has_value());
  EXPECT_EQ(match.where->ToString(), "(n.id = 1)");
}

TEST(GqlTest, FilterConjoinsWithExistingWhere) {
  auto query = gql::ParseQuery(
      "MATCH (n:Person) WHERE n.id > 0 FILTER n.id < 9 "
      "RETURN DISTINCT n.id AS id");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  const auto& match = std::get<cypher::MatchClause>(query->clauses[0]);
  EXPECT_EQ(match.where->ToString(), "((n.id > 0) AND (n.id < 9))");
}

TEST(GqlTest, FilterBeforeAnyClauseFails) {
  auto query = gql::ParseQuery("FILTER n.id = 1 RETURN n");
  EXPECT_FALSE(query.ok());
}

TEST(GqlTest, FilterAfterWithAttachesThere) {
  auto query = gql::ParseQuery(
      "MATCH (n:Person)-[:KNOWS]->(m:Person) "
      "WITH n, count(m) AS friends FILTER friends > 2 "
      "RETURN DISTINCT n.id AS id");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  const auto& with = std::get<cypher::WithClause>(query->clauses[1]);
  ASSERT_TRUE(with.where.has_value());
}

TEST(GqlTest, CompilesAndRunsThroughSharedPipeline) {
  Compiler compiler;
  ASSERT_TRUE(compiler.LoadPgSchema(kSchema).ok());
  Database db = SmallDb(&compiler);
  auto unit = compiler.CompileGql(
      "MATCH (n:Person)-[:KNOWS]->(m:Person) FILTER n.id = 1 "
      "RETURN DISTINCT m.firstName AS name");
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  auto result = compiler.RunOnDatalog(unit->optimized, &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ToStringSet(db.symbols()),
            (std::set<std::string>{"(\"Bob\")"}));
}

}  // namespace
}  // namespace raqlet
