// Tests for the §5 optimizer passes, including the paper's Fig. 4 example
// and differential semantic-preservation checks against the Datalog
// engine.

#include <gtest/gtest.h>

#include <random>

#include "engine/datalog/engine.h"
#include "dlir/parser.h"
#include "opt/magic_sets.h"
#include "opt/pass_manager.h"
#include "opt/passes.h"

namespace raqlet::opt {
namespace {

dlir::Program Parse(const std::string& text) {
  auto program = dlir::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

// The paper's running example (Fig. 3d): Match1/Where1/Return chain over
// the simplified LDBC schema.
constexpr char kPaperPipeline[] = R"(
.decl Person(id: number, firstName: symbol, locationIP: symbol)
.input Person
.decl City(id: number, name: symbol)
.input City
.decl Person_IS_LOCATED_IN_City(id1: number, id2: number, id: number)
.input Person_IS_LOCATED_IN_City
.decl Match1(n: number, x1: number, p: number)
.decl Where1(n: number, x1: number, p: number)
.decl Return(firstName: symbol, cityId: number)
.output Return
Match1(n, x1, p) :- Person_IS_LOCATED_IN_City(n, p, x1), Person(n, _, _), City(p, _).
Where1(n, x1, p) :- Match1(n, x1, p), Person(n, _, _), n = 42.
Return(firstName, cityId) :- Where1(n, x1, p), Person(n, firstName, _), City(p, _), p = cityId.
)";

Database MakePaperDb() {
  Database db;
  RelationSchema person;
  person.name = "Person";
  person.columns = {{"id", ValueType::kNumber},
                    {"firstName", ValueType::kSymbol},
                    {"locationIP", ValueType::kSymbol}};
  person.primary_key = {0};
  Relation* p = *db.CreateRelation(person);
  p->Insert({Value::Number(42), db.Str("Ada"), db.Str("10.0.0.1")});
  p->Insert({Value::Number(7), db.Str("Bob"), db.Str("10.0.0.2")});

  RelationSchema city;
  city.name = "City";
  city.columns = {{"id", ValueType::kNumber}, {"name", ValueType::kSymbol}};
  city.primary_key = {0};
  Relation* c = *db.CreateRelation(city);
  c->Insert({Value::Number(100), db.Str("Edinburgh")});
  c->Insert({Value::Number(200), db.Str("Lausanne")});

  RelationSchema located;
  located.name = "Person_IS_LOCATED_IN_City";
  located.columns = {{"id1", ValueType::kNumber},
                     {"id2", ValueType::kNumber},
                     {"id", ValueType::kNumber}};
  Relation* l = *db.CreateRelation(located);
  l->Insert({Value::Number(42), Value::Number(100), Value::Number(1)});
  l->Insert({Value::Number(7), Value::Number(200), Value::Number(2)});
  return db;
}

std::set<std::string> ResultSet(const Database& db, const std::string& rel) {
  std::set<std::string> out;
  const Relation* r = *db.GetRelation(rel);
  for (const Tuple& row : r->rows()) {
    out.insert(TupleToString(row, &db.symbols()));
  }
  return out;
}

// Runs `program` on a fresh paper database and returns the Return rows.
std::set<std::string> RunPaper(const dlir::Program& program) {
  Database db = MakePaperDb();
  engine::DatalogEngine eng;
  Status st = eng.Run(program, &db);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return ResultSet(db, "Return");
}

TEST(InlineTest, InlinesPaperPipeline) {
  auto program = Parse(kPaperPipeline);
  auto inlined = InlineRules(program);
  ASSERT_TRUE(inlined.ok()) << inlined.status().ToString();
  // The Return rule no longer references Where1/Match1.
  for (const dlir::Rule& rule : inlined->rules) {
    if (rule.head.predicate != "Return") continue;
    EXPECT_FALSE(rule.BodyUses("Where1"));
    EXPECT_FALSE(rule.BodyUses("Match1"));
  }
  // Semantics preserved.
  EXPECT_EQ(RunPaper(program), RunPaper(*inlined));
}

TEST(InlineTest, RemovesDuplicateSelfJoin) {
  // After inlining Match1 into Where1, Person(n, _, _) appears twice
  // (Fig. 4a: "the duplication is removed").
  auto inlined = InlineRules(Parse(kPaperPipeline));
  ASSERT_TRUE(inlined.ok());
  for (const dlir::Rule& rule : inlined->rules) {
    if (rule.head.predicate != "Where1") continue;
    int person_atoms = 0;
    for (const dlir::Atom& atom : rule.body) {
      if (atom.predicate == "Person") ++person_atoms;
    }
    EXPECT_EQ(person_atoms, 1);
  }
}

TEST(InlineTest, DoesNotInlineRecursivePredicates) {
  auto program = Parse(R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.decl out(x: number)
.output out
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
out(y) :- tc(1, y).
)");
  auto inlined = InlineRules(program);
  ASSERT_TRUE(inlined.ok());
  // tc has two rules and is recursive: the out rule must still call it.
  bool out_uses_tc = false;
  for (const dlir::Rule& rule : inlined->rules) {
    if (rule.head.predicate == "out" && rule.BodyUses("tc")) out_uses_tc = true;
  }
  EXPECT_TRUE(out_uses_tc);
}

TEST(InlineTest, DoesNotInlineIntoAggregates) {
  auto program = Parse(R"(
.decl edge(x: number, y: number)
.input edge
.decl pairs(x: number, y: number)
.decl cnt(x: number, c: number)
.output cnt
pairs(x, y) :- edge(x, y), x < y.
cnt(x, count(y)) :- pairs(x, y).
)");
  auto inlined = InlineRules(program);
  ASSERT_TRUE(inlined.ok());
  for (const dlir::Rule& rule : inlined->rules) {
    if (rule.head.predicate == "cnt") {
      EXPECT_TRUE(rule.BodyUses("pairs"));  // untouched
    }
  }
}

TEST(InlineTest, DropsInfeasibleUnification) {
  auto program = Parse(R"(
.decl a(x: number)
.input a
.decl one(x: number)
.decl out(x: number)
.output out
one(1) :- a(_).
out(x) :- one(2), a(x).
)");
  auto inlined = InlineRules(program);
  ASSERT_TRUE(inlined.ok());
  // one's head constant 1 cannot unify with the call's constant 2: the
  // out rule is statically infeasible and removed.
  for (const dlir::Rule& rule : inlined->rules) {
    EXPECT_NE(rule.head.predicate, "out");
  }
}

TEST(DreTest, RemovesUnreachableRules) {
  auto program = Parse(kPaperPipeline);
  auto inlined = InlineRules(program);
  ASSERT_TRUE(inlined.ok());
  auto cleaned = EliminateDeadRules(*inlined);
  ASSERT_TRUE(cleaned.ok());
  // Only the Return rule survives (Fig. 4b).
  ASSERT_EQ(cleaned->rules.size(), 1u);
  EXPECT_EQ(cleaned->rules[0].head.predicate, "Return");
  EXPECT_EQ(cleaned->FindDecl("Match1"), nullptr);
  EXPECT_EQ(cleaned->FindDecl("Where1"), nullptr);
  EXPECT_NE(cleaned->FindDecl("Person"), nullptr);
  EXPECT_EQ(RunPaper(program), RunPaper(*cleaned));
}

TEST(DreTest, NoOutputsMeansNoChange) {
  auto program = Parse(R"(
.decl a(x: number)
.decl b(x: number)
b(x) :- a(x).
)");
  auto cleaned = EliminateDeadRules(program);
  ASSERT_TRUE(cleaned.ok());
  EXPECT_EQ(cleaned->rules.size(), 1u);
}

TEST(PushdownTest, SubstitutesConstants) {
  auto program = Parse(R"(
.decl a(x: number, y: number)
.input a
.decl out(x: number, y: number)
.output out
out(x, y) :- a(x, y), x = 42.
)");
  auto pushed = PushdownConstants(program);
  ASSERT_TRUE(pushed.ok());
  const dlir::Rule& rule = pushed->rules[0];
  EXPECT_TRUE(rule.constraints.empty());
  EXPECT_TRUE(rule.body[0].args[0].is_const());
  EXPECT_EQ(rule.body[0].args[0].constant.num, 42);
  EXPECT_TRUE(rule.head.args[0].is_const());
}

TEST(PushdownTest, FoldsConstantArithmetic) {
  auto program = Parse(R"(
.decl a(x: number)
.input a
.decl out(x: number)
.output out
out(y) :- a(x), y = x, 1 + 2 < 4.
)");
  auto pushed = PushdownConstants(program);
  ASSERT_TRUE(pushed.ok());
  // The tautological constraint disappears.
  for (const dlir::Constraint& c : pushed->rules[0].constraints) {
    EXPECT_FALSE(c.lhs.is_const() && c.rhs.is_const());
  }
}

TEST(PushdownTest, DropsInfeasibleRules) {
  auto program = Parse(R"(
.decl a(x: number)
.input a
.decl out(x: number)
.output out
out(x) :- a(x), 1 > 2.
)");
  auto pushed = PushdownConstants(program);
  ASSERT_TRUE(pushed.ok());
  EXPECT_TRUE(pushed->rules.empty());
}

TEST(SelfJoinTest, MergesKeyEqualAtoms) {
  auto program = Parse(R"(
.decl Person(id: number, name: symbol, ip: symbol)
.input Person
.decl out(n: symbol, i: symbol)
.output out
out(n, i) :- Person(x, n, _), Person(x, _, i).
)");
  program.FindDecl("Person")->primary_key = {0};
  auto merged = EliminateKeySelfJoins(program);
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->rules[0].body.size(), 1u);
  // The merged atom binds both name and ip.
  const dlir::Atom& atom = merged->rules[0].body[0];
  EXPECT_TRUE(atom.args[1].is_var());
  EXPECT_TRUE(atom.args[2].is_var());
}

TEST(SelfJoinTest, LeavesDistinctKeysAlone) {
  auto program = Parse(R"(
.decl Person(id: number, name: symbol)
.input Person
.decl out(a: symbol, b: symbol)
.output out
out(a, b) :- Person(x, a), Person(y, b), x != y.
)");
  program.FindDecl("Person")->primary_key = {0};
  auto merged = EliminateKeySelfJoins(program);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->rules[0].body.size(), 2u);
}

TEST(SelfJoinTest, NoKeyNoMerge) {
  auto program = Parse(R"(
.decl edge(x: number, y: number)
.input edge
.decl out(x: number, a: number, b: number)
.output out
out(x, a, b) :- edge(x, a), edge(x, b).
)");
  auto merged = EliminateKeySelfJoins(program);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->rules[0].body.size(), 2u);  // edge is not keyed
}

TEST(StandardPipelineTest, PaperExampleCollapsesToOneRule) {
  auto program = Parse(kPaperPipeline);
  auto optimized = PassManager::Standard().Run(program);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  ASSERT_EQ(optimized->rules.size(), 1u);
  EXPECT_EQ(optimized->rules[0].head.predicate, "Return");
  EXPECT_EQ(RunPaper(program), RunPaper(*optimized));
  // Sanity: the one surviving rule probes Person with the constant 42.
  bool has_const_42 = false;
  for (const dlir::Atom& atom : optimized->rules[0].body) {
    for (const dlir::Term& arg : atom.args) {
      if (arg.is_const() && arg.constant.num == 42) has_const_42 = true;
    }
  }
  EXPECT_TRUE(has_const_42);
}

constexpr char kBoundTc[] = R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.decl out(y: number)
.output out
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
out(y) :- tc(1, y).
)";

Database MakeChainDb(int n) {
  Database db;
  RelationSchema s;
  s.name = "edge";
  s.columns = {{"x", ValueType::kNumber}, {"y", ValueType::kNumber}};
  Relation* rel = *db.CreateRelation(s);
  for (int i = 0; i < n; ++i) {
    rel->Insert({Value::Number(i), Value::Number(i + 1)});
  }
  // A second component unreachable from node 1.
  for (int i = 1000; i < 1000 + n; ++i) {
    rel->Insert({Value::Number(i), Value::Number(i + 1)});
  }
  return db;
}

TEST(MagicSetsTest, TransformsBoundTcAndPreservesResults) {
  auto program = Parse(kBoundTc);
  auto transformed = ApplyMagicSets(program);
  ASSERT_TRUE(transformed.ok()) << transformed.status().ToString();
  // The original (now unreachable) tc rules die in the follow-up DRE, as
  // in the Aggressive pipeline.
  auto magic = EliminateDeadRules(*transformed);
  ASSERT_TRUE(magic.ok());
  ASSERT_TRUE(magic->Validate().ok()) << magic->Validate().ToString()
                                      << "\n" << magic->ToString();
  // Adorned + magic predicates exist.
  EXPECT_NE(magic->FindDecl("tc_bf"), nullptr);
  EXPECT_NE(magic->FindDecl("m_tc_bf"), nullptr);

  Database db1 = MakeChainDb(30);
  Database db2 = MakeChainDb(30);
  engine::DatalogEngine eng;
  engine::EvalStats stats_plain;
  engine::EvalStats stats_magic;
  ASSERT_TRUE(eng.Run(program, &db1, &stats_plain).ok());
  Status st = eng.Run(*magic, &db2, &stats_magic);
  ASSERT_TRUE(st.ok()) << st.ToString() << "\n" << magic->ToString();
  EXPECT_EQ(ResultSet(db1, "out"), ResultSet(db2, "out"));
  // The magic version derives far fewer tuples (no closure of the second
  // component, no pairs not rooted at 1).
  EXPECT_LT(stats_magic.tuples_inserted, stats_plain.tuples_inserted / 4);
}

TEST(MagicSetsTest, NoConstantsNoChange) {
  auto program = Parse(R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.decl out(x: number, y: number)
.output out
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
out(x, y) :- tc(x, y).
)");
  auto magic = ApplyMagicSets(program);
  ASSERT_TRUE(magic.ok());
  EXPECT_EQ(magic->rules.size(), program.rules.size());
  EXPECT_EQ(magic->FindDecl("tc_bf"), nullptr);
}

TEST(MagicSetsTest, RightRecursionReachability) {
  // tc(x,y) :- edge(x,z), tc(z,y): magic propagates through edge.
  auto program = Parse(R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.decl out(y: number)
.output out
tc(x, y) :- edge(x, y).
tc(x, y) :- edge(x, z), tc(z, y).
out(y) :- tc(1, y).
)");
  auto magic = ApplyMagicSets(program);
  ASSERT_TRUE(magic.ok());
  Database db1 = MakeChainDb(20);
  Database db2 = MakeChainDb(20);
  engine::DatalogEngine eng;
  ASSERT_TRUE(eng.Run(program, &db1).ok());
  Status st = eng.Run(*magic, &db2);
  ASSERT_TRUE(st.ok()) << st.ToString() << "\n" << magic->ToString();
  EXPECT_EQ(ResultSet(db1, "out"), ResultSet(db2, "out"));
}

TEST(MagicSetsTest, BailsOutOnNegationInRegion) {
  auto program = Parse(R"(
.decl edge(x: number, y: number)
.input edge
.decl blocked(x: number)
.input blocked
.decl tc(x: number, y: number)
.decl out(y: number)
.output out
tc(x, y) :- edge(x, y), !blocked(y).
tc(x, y) :- tc(x, z), edge(z, y), !blocked(y).
out(y) :- tc(1, y).
)");
  auto magic = ApplyMagicSets(program);
  ASSERT_TRUE(magic.ok());
  EXPECT_EQ(magic->FindDecl("tc_bf"), nullptr);  // unchanged
}

// Builds a program whose magic-sets transform adorns `depth + 1`
// predicates: out(y) :- p0(1, y), p0 recursive, and a delegation chain
// p0 -> p1 -> ... -> p<depth> bottoming out at edge. Every adorned
// predicate declares two new relations, so the transform grows
// Program::decls far past its copied-from capacity.
std::string MakeDeepChainProgram(int depth) {
  std::string text = ".decl edge(x: number, y: number)\n.input edge\n";
  for (int i = 0; i <= depth; ++i) {
    text += ".decl p" + std::to_string(i) + "(x: number, y: number)\n";
  }
  text += ".decl out(y: number)\n.output out\n";
  text += "p0(x, y) :- p0(x, z), edge(z, y).\n";
  for (int i = 0; i < depth; ++i) {
    text += "p" + std::to_string(i) + "(x, y) :- p" + std::to_string(i + 1) +
            "(x, y).\n";
  }
  text += "p" + std::to_string(depth) + "(x, y) :- edge(x, y).\n";
  text += "out(y) :- p0(1, y).\n";
  return text;
}

// Regression test for a heap-use-after-free: `declare` in ApplyMagicSetsTo
// cached a FindDecl pointer into out.decls across push_backs that
// reallocate the vector. Program copies start at capacity == size, so the
// very first adorned declaration already reallocated; the long chain here
// forces many reallocations so the bug cannot silently return.
TEST(MagicSetsTest, ManyAdornedPredicatesSurviveDeclReallocation) {
  auto program = Parse(MakeDeepChainProgram(11));
  auto magic = ApplyMagicSets(program);
  ASSERT_TRUE(magic.ok()) << magic.status().ToString();
  ASSERT_TRUE(magic->Validate().ok()) << magic->Validate().ToString();
  // All twelve predicates got adorned + magic decls with intact columns.
  for (int i = 0; i <= 11; ++i) {
    const std::string name = "p" + std::to_string(i);
    const dlir::RelationDecl* adorned = magic->FindDecl(name + "_bf");
    ASSERT_NE(adorned, nullptr) << name;
    EXPECT_EQ(adorned->arity(), 2u);
    const dlir::RelationDecl* m = magic->FindDecl("m_" + name + "_bf");
    ASSERT_NE(m, nullptr) << name;
    ASSERT_EQ(m->arity(), 1u);
    // The magic column is copied from the base decl's bound position.
    EXPECT_EQ(m->columns[0].name, "x");
  }
  // Semantics preserved against the untransformed program.
  Database db1 = MakeChainDb(15);
  Database db2 = MakeChainDb(15);
  engine::DatalogEngine eng;
  ASSERT_TRUE(eng.Run(program, &db1).ok());
  Status st = eng.Run(*magic, &db2);
  ASSERT_TRUE(st.ok()) << st.ToString() << "\n" << magic->ToString();
  EXPECT_EQ(ResultSet(db1, "out"), ResultSet(db2, "out"));
}

TEST(MagicSetsTest, NonOutputCallSiteLeavesProgramUnchanged) {
  // The only constant-bound call of `tc` sits in the body of a rule whose
  // head is NOT an output relation; the call-site scan (which only looks
  // at output rules) must find nothing and bail out unchanged.
  auto program = Parse(R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.decl inner(y: number)
.decl out(y: number)
.output out
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
inner(y) :- tc(1, y).
out(y) :- inner(y).
)");
  auto magic = ApplyMagicSetsTo(program, "tc", "bf");
  ASSERT_TRUE(magic.ok()) << magic.status().ToString();
  EXPECT_EQ(magic->FindDecl("tc_bf"), nullptr);
  EXPECT_EQ(magic->FindDecl("m_tc_bf"), nullptr);
  EXPECT_EQ(magic->rules.size(), program.rules.size());
}

TEST(LinearizeTest, RewritesNonLinearTc) {
  auto program = Parse(R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.output tc
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), tc(z, y).
)");
  auto linear = LinearizeRecursion(program);
  ASSERT_TRUE(linear.ok());
  for (const dlir::Rule& rule : linear->rules) {
    int recursive = 0;
    for (const dlir::Atom& atom : rule.body) {
      if (atom.predicate == "tc") ++recursive;
    }
    EXPECT_LE(recursive, 1);
  }
  // Differential check.
  Database db1 = MakeChainDb(15);
  Database db2 = MakeChainDb(15);
  engine::DatalogEngine eng;
  ASSERT_TRUE(eng.Run(program, &db1).ok());
  ASSERT_TRUE(eng.Run(*linear, &db2).ok());
  EXPECT_EQ(ResultSet(db1, "tc"), ResultSet(db2, "tc"));
}

TEST(LinearizeTest, LeavesSameGenerationAlone) {
  // sg's recursive rule is not TC-shaped; must be untouched.
  auto program = Parse(R"(
.decl parent(x: number, y: number)
.input parent
.decl sg(x: number, y: number)
.output sg
sg(x, x) :- parent(x, _).
sg(x, y) :- parent(xp, x), sg(xp, yp), parent(yp, y).
)");
  auto linear = LinearizeRecursion(program);
  ASSERT_TRUE(linear.ok());
  EXPECT_EQ(linear->rules.size(), program.rules.size());
}

TEST(PassManagerTest, UnknownPassFails) {
  PassManager pm;
  EXPECT_EQ(pm.Add("frobnicate").code(), StatusCode::kNotFound);
  EXPECT_TRUE(pm.Add("inline").ok());
  EXPECT_EQ(pm.PassNames(), std::vector<std::string>{"inline"});
}

TEST(PassManagerTest, AggressiveIncludesMagicSets) {
  PassManager pm = PassManager::Aggressive();
  auto names = pm.PassNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "magic-sets"), names.end());
}

// Property test: the standard pipeline preserves semantics on random
// bound-TC instances.
class PipelinePreservationTest : public ::testing::TestWithParam<int> {};

TEST_P(PipelinePreservationTest, StandardAndAggressiveAgree) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) + 7);
  std::uniform_int_distribution<int> node(1, 15);
  Database db_base;
  RelationSchema s;
  s.name = "edge";
  s.columns = {{"x", ValueType::kNumber}, {"y", ValueType::kNumber}};
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < 30; ++i) edges.emplace_back(node(rng), node(rng));

  auto make_db = [&]() {
    Database db;
    Relation* rel = *db.CreateRelation(s);
    for (auto [x, y] : edges) {
      rel->Insert({Value::Number(x), Value::Number(y)});
    }
    return db;
  };

  auto program = Parse(kBoundTc);
  auto standard = PassManager::Standard().Run(program);
  auto aggressive = PassManager::Aggressive().Run(program);
  ASSERT_TRUE(standard.ok());
  ASSERT_TRUE(aggressive.ok());

  Database db0 = make_db();
  Database db1 = make_db();
  Database db2 = make_db();
  engine::DatalogEngine eng;
  ASSERT_TRUE(eng.Run(program, &db0).ok());
  ASSERT_TRUE(eng.Run(*standard, &db1).ok());
  Status st = eng.Run(*aggressive, &db2);
  ASSERT_TRUE(st.ok()) << st.ToString() << "\n" << aggressive->ToString();
  EXPECT_EQ(ResultSet(db0, "out"), ResultSet(db1, "out"));
  EXPECT_EQ(ResultSet(db0, "out"), ResultSet(db2, "out"));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, PipelinePreservationTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace raqlet::opt
