// Unit tests for storage/: Relation dedup/indexing, Database, CSV IO.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <thread>

#include "storage/csv.h"
#include "storage/database.h"
#include "storage/relation.h"

namespace raqlet {
namespace {

RelationSchema EdgeSchema(const std::string& name = "edge") {
  RelationSchema s;
  s.name = name;
  s.columns = {{"src", ValueType::kNumber}, {"dst", ValueType::kNumber}};
  return s;
}

TEST(RelationTest, InsertDeduplicates) {
  Relation r(EdgeSchema());
  EXPECT_TRUE(r.Insert({Value::Number(1), Value::Number(2)}).value());
  EXPECT_FALSE(r.Insert({Value::Number(1), Value::Number(2)}).value());
  EXPECT_TRUE(r.Insert({Value::Number(2), Value::Number(1)}).value());
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains({Value::Number(1), Value::Number(2)}));
  EXPECT_FALSE(r.Contains({Value::Number(9), Value::Number(9)}));
}

TEST(RelationTest, PreservesInsertionOrder) {
  Relation r(EdgeSchema());
  r.Insert({Value::Number(3), Value::Number(4)});
  r.Insert({Value::Number(1), Value::Number(2)});
  ASSERT_EQ(r.rows().size(), 2u);
  EXPECT_EQ(r.rows()[0][0].AsNumber(), 3);
  EXPECT_EQ(r.rows()[1][0].AsNumber(), 1);
}

TEST(RelationTest, IndexGroupsByKey) {
  Relation r(EdgeSchema());
  r.Insert({Value::Number(1), Value::Number(2)});
  r.Insert({Value::Number(1), Value::Number(3)});
  r.Insert({Value::Number(2), Value::Number(3)});
  const auto& index = r.GetIndex({0});
  auto it = index.find(Tuple{Value::Number(1)});
  ASSERT_NE(it, index.end());
  EXPECT_EQ(it->second.size(), 2u);
}

TEST(RelationTest, IndexIsMaintainedIncrementally) {
  Relation r(EdgeSchema());
  r.Insert({Value::Number(1), Value::Number(2)});
  const auto& index1 = r.GetIndex({0});
  EXPECT_EQ(index1.size(), 1u);
  // Insert after the index was built; next GetIndex folds it in.
  r.Insert({Value::Number(5), Value::Number(6)});
  const auto& index2 = r.GetIndex({0});
  EXPECT_EQ(index2.size(), 2u);
  auto it = index2.find(Tuple{Value::Number(5)});
  ASSERT_NE(it, index2.end());
  EXPECT_EQ(it->second[0], 1u);
}

TEST(RelationTest, EnsureIndexMatchesGetIndexAndStaysCurrent) {
  Relation r(EdgeSchema());
  r.Insert({Value::Number(1), Value::Number(2)});
  const Relation::KeyIndex* index = r.EnsureIndex({0});
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->size(), 1u);
  r.Insert({Value::Number(5), Value::Number(6)});
  // Same cache entry (pointer-stable), folded up to the new rows.
  EXPECT_EQ(r.EnsureIndex({0}), index);
  EXPECT_EQ(index->size(), 2u);
  EXPECT_EQ(&r.GetIndex({0}), index);
}

// Multi-reader phase of the relation threading contract: once the index
// is up to date and no writer is active, concurrent EnsureIndex calls and
// probes are safe (the tsan CI leg checks this for real).
TEST(RelationTest, EnsureIndexIsSafeUnderConcurrentReaders) {
  Relation r(EdgeSchema());
  for (int i = 0; i < 256; ++i) {
    r.Insert({Value::Number(i % 16), Value::Number(i)});
  }
  std::atomic<size_t> total_hits{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&r, &total_hits] {
      for (int pass = 0; pass < 50; ++pass) {
        const Relation::KeyIndex* index = r.EnsureIndex({0});
        auto it = index->find(Tuple{Value::Number(3)});
        if (it != index->end()) total_hits.fetch_add(it->second.size());
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(total_hits.load(), 4u * 50u * 16u);
}

TEST(RelationTest, InsertBatchDedupsWithinAndAcrossBatches) {
  Relation r(EdgeSchema());
  r.Insert({Value::Number(1), Value::Number(2)});
  // Batch: duplicate of an existing row, an internal duplicate pair, and
  // two new rows. Order of survivors must be batch order.
  Result<size_t> inserted = r.InsertBatch({
      {Value::Number(1), Value::Number(2)},  // already present
      {Value::Number(3), Value::Number(4)},
      {Value::Number(3), Value::Number(4)},  // duplicate within the batch
      {Value::Number(5), Value::Number(6)},
  });
  ASSERT_TRUE(inserted.ok());
  EXPECT_EQ(*inserted, 2u);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r.rows()[1][0].AsNumber(), 3);
  EXPECT_EQ(r.rows()[2][0].AsNumber(), 5);
  EXPECT_TRUE(r.Contains({Value::Number(5), Value::Number(6)}));
  EXPECT_FALSE(r.Contains({Value::Number(5), Value::Number(7)}));
  EXPECT_EQ(*r.InsertBatch({}), 0u);  // empty batch is a no-op
  EXPECT_EQ(r.size(), 3u);
}

TEST(RelationTest, ReleaseRowsHandsOverStorageAndResets) {
  // The graph engine's batch DISTINCT uses a scratch Relation purely as a
  // deduplicator: InsertBatch, then take the surviving rows by move.
  Relation r(EdgeSchema());
  r.InsertBatch({
      {Value::Number(1), Value::Number(2)},
      {Value::Number(3), Value::Number(4)},
      {Value::Number(1), Value::Number(2)},  // duplicate, dropped
  });
  std::vector<Tuple> rows = r.ReleaseRows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].AsNumber(), 1);
  EXPECT_EQ(rows[1][0].AsNumber(), 3);
  // The relation is empty and fully reusable afterwards.
  EXPECT_EQ(r.size(), 0u);
  EXPECT_FALSE(r.Contains({Value::Number(1), Value::Number(2)}));
  EXPECT_TRUE(r.Insert({Value::Number(1), Value::Number(2)}).value());
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, InsertBatchMatchesTupleAtATimeInsertion) {
  // Randomized equivalence: feeding the same (duplicate-heavy) stream
  // through Insert and through chunked InsertBatch must produce identical
  // contents in identical order.
  std::mt19937 rng(99);
  std::uniform_int_distribution<int> pick(0, 15);
  std::vector<Tuple> stream;
  for (int i = 0; i < 500; ++i) {
    stream.push_back({Value::Number(pick(rng)), Value::Number(pick(rng))});
  }
  Relation serial(EdgeSchema());
  for (const Tuple& t : stream) serial.Insert(t);
  Relation batched(EdgeSchema("edge2"));
  for (size_t begin = 0; begin < stream.size(); begin += 64) {
    size_t end = std::min(stream.size(), begin + 64);
    batched.InsertBatch(
        std::vector<Tuple>(stream.begin() + begin, stream.begin() + end));
  }
  ASSERT_EQ(serial.size(), batched.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial.rows()[i], batched.rows()[i]) << "row " << i;
  }
}

TEST(RelationTest, InsertBatchKeepsCachedIndexesCurrent) {
  Relation r(EdgeSchema());
  r.Insert({Value::Number(1), Value::Number(2)});
  const Relation::KeyIndex* index = r.EnsureIndex({0});
  EXPECT_EQ(index->size(), 1u);
  // The batch must fold the new suffix into the cached index eagerly —
  // the EnsureIndex pointer stays valid and sees the new keys.
  r.InsertBatch({{Value::Number(1), Value::Number(3)},
                 {Value::Number(7), Value::Number(8)}});
  EXPECT_EQ(r.EnsureIndex({0}), index);
  EXPECT_EQ(index->size(), 2u);
  auto it = index->find(Tuple{Value::Number(1)});
  ASSERT_NE(it, index->end());
  EXPECT_EQ(it->second, (std::vector<uint32_t>{0, 1}));  // ascending rows
}

TEST(RelationTest, InsertBatchWatermarkSurvivesInterleavedIndexUse) {
  // Batches interleaved with GetIndex/EnsureIndex and single inserts:
  // each index entry must be folded exactly once per row regardless of
  // which operation triggers the fold.
  Relation r(EdgeSchema());
  r.InsertBatch({{Value::Number(1), Value::Number(1)},
                 {Value::Number(1), Value::Number(2)}});
  const auto& by_src = r.GetIndex({0});  // built after the first batch
  EXPECT_EQ(by_src.at(Tuple{Value::Number(1)}).size(), 2u);
  r.Insert({Value::Number(1), Value::Number(3)});  // lazy fold pending
  r.InsertBatch({{Value::Number(1), Value::Number(4)},
                 {Value::Number(2), Value::Number(1)}});  // eager fold
  EXPECT_EQ(by_src.at(Tuple{Value::Number(1)}).size(), 4u);
  const auto& by_dst = r.GetIndex({1});  // fresh index after both batches
  EXPECT_EQ(by_dst.at(Tuple{Value::Number(1)}).size(), 2u);
  EXPECT_EQ(by_src.at(Tuple{Value::Number(1)}),
            (std::vector<uint32_t>{0, 1, 2, 3}));
  // No double-folded (duplicated) row indices anywhere.
  for (const auto& [key, rows] : by_src) {
    for (size_t i = 1; i < rows.size(); ++i) EXPECT_LT(rows[i - 1], rows[i]);
  }
}

TEST(RelationTest, ReplaceRowsResets) {
  Relation r(EdgeSchema());
  r.Insert({Value::Number(1), Value::Number(2)});
  r.GetIndex({0});
  r.ReplaceRows({{Value::Number(7), Value::Number(8)},
                 {Value::Number(7), Value::Number(8)}});
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains({Value::Number(7), Value::Number(8)}));
  EXPECT_EQ(r.GetIndex({0}).size(), 1u);
}

TEST(RelationTest, EraseBatchCompactsKeepingRelativeOrder) {
  Relation r(EdgeSchema());
  for (int i = 0; i < 6; ++i) {
    r.Insert({Value::Number(i), Value::Number(i * 10)}).value();
  }
  auto erased = r.EraseBatch({{Value::Number(1), Value::Number(10)},
                              {Value::Number(4), Value::Number(40)}});
  ASSERT_TRUE(erased.ok());
  EXPECT_EQ(*erased, 2u);
  ASSERT_EQ(r.size(), 4u);
  // Survivors compacted in place, original relative order intact.
  std::vector<int64_t> srcs;
  for (const Tuple& t : r.MaterializeRows()) srcs.push_back(t[0].AsNumber());
  EXPECT_EQ(srcs, (std::vector<int64_t>{0, 2, 3, 5}));
  EXPECT_FALSE(r.Contains({Value::Number(1), Value::Number(10)}));
  EXPECT_TRUE(r.Contains({Value::Number(5), Value::Number(50)}));
}

TEST(RelationTest, EraseBatchIgnoresAbsentWrongArityAndDuplicates) {
  Relation r(EdgeSchema());
  r.Insert({Value::Number(1), Value::Number(2)}).value();
  r.Insert({Value::Number(3), Value::Number(4)}).value();
  auto erased = r.EraseBatch({
      {Value::Number(9), Value::Number(9)},                   // absent
      {Value::Number(1)},                                     // wrong arity
      {Value::Number(3), Value::Number(4)},                   // present
      {Value::Number(3), Value::Number(4)},                   // duplicate
  });
  ASSERT_TRUE(erased.ok());
  EXPECT_EQ(*erased, 1u);
  EXPECT_EQ(r.size(), 1u);
  // Erasing from an empty relation (or with an empty batch) is a no-op.
  EXPECT_EQ(r.EraseBatch({}).value(), 0u);
  r.EraseBatch({{Value::Number(1), Value::Number(2)}}).value();
  EXPECT_EQ(r.EraseBatch({{Value::Number(1), Value::Number(2)}}).value(), 0u);
}

TEST(RelationTest, DeleteThenReinsertBehavesLikeFirstInsert) {
  Relation r(EdgeSchema());
  r.Insert({Value::Number(1), Value::Number(2)}).value();
  r.Insert({Value::Number(3), Value::Number(4)}).value();
  ASSERT_EQ(r.EraseBatch({{Value::Number(1), Value::Number(2)}}).value(), 1u);
  // The dedup table was rebuilt without a stale entry: re-inserting the
  // erased tuple is fresh and appends at the end.
  EXPECT_TRUE(r.Insert({Value::Number(1), Value::Number(2)}).value());
  EXPECT_FALSE(r.Insert({Value::Number(1), Value::Number(2)}).value());
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.MaterializeRows()[1][0].AsNumber(), 1);
}

TEST(RelationTest, EraseBatchDuringCachedIndexLifetimeRebuildsIndex) {
  Relation r(EdgeSchema());
  r.Insert({Value::Number(1), Value::Number(2)}).value();
  r.Insert({Value::Number(1), Value::Number(3)}).value();
  r.Insert({Value::Number(2), Value::Number(3)}).value();
  // Build and hold an index across the erase; the old pointer is
  // invalidated by contract, so we must re-request it afterwards.
  const auto* before = r.EnsureIndex({0});
  ASSERT_EQ(before->at(Tuple{Value::Number(1)}).size(), 2u);
  ASSERT_EQ(r.EraseBatch({{Value::Number(1), Value::Number(2)}}).value(), 1u);
  const auto* after = r.EnsureIndex({0});
  // Row indices shifted: the index reflects the compacted rows.
  ASSERT_EQ(after->at(Tuple{Value::Number(1)}).size(), 1u);
  EXPECT_EQ(r.ValueAt(after->at(Tuple{Value::Number(1)})[0], 1).AsNumber(), 3);
  EXPECT_EQ(after->count(Tuple{Value::Number(2)}), 1u);
}

TEST(RelationTest, EraseBatchInvalidatesColumnViews) {
  Relation r(EdgeSchema());
  for (int i = 0; i < 4; ++i) {
    r.Insert({Value::Number(i), Value::Number(i + 100)}).value();
  }
  Relation::ColumnView before = r.Column(1);
  ASSERT_EQ(before.size(), 4u);
  ASSERT_EQ(r.EraseBatch({{Value::Number(0), Value::Number(100)},
                          {Value::Number(2), Value::Number(102)}})
                .value(),
            2u);
  // `before` is invalid now (rows shifted); a fresh view sees the
  // compacted column with survivors in order.
  Relation::ColumnView after = r.Column(1);
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after.at(0).AsNumber(), 101);
  EXPECT_EQ(after.at(1).AsNumber(), 103);
  EXPECT_TRUE(after.uniform_number());
}

TEST(RelationTest, EraseBatchMixedKindColumn) {
  RelationSchema s;
  s.name = "props";
  s.columns = {{"k", ValueType::kNumber}, {"v", ValueType::kNumber}};
  Relation r(s);
  // Mix kinds in column 1 so the kind sidecar exists and must be
  // compacted alongside the words.
  r.Insert({Value::Number(1), Value::Number(7)}).value();
  r.Insert({Value::Number(2), Value::Bool(true)}).value();
  r.Insert({Value::Number(3), Value::Null()}).value();
  ASSERT_EQ(r.EraseBatch({{Value::Number(2), Value::Bool(true)}}).value(),
            1u);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains({Value::Number(1), Value::Number(7)}));
  EXPECT_TRUE(r.Contains({Value::Number(3), Value::Null()}));
  EXPECT_FALSE(r.Contains({Value::Number(2), Value::Bool(true)}));
  EXPECT_EQ(r.MaterializeRows()[1][1].kind(), ValueType::kNull);
}

TEST(RelationColumnTest, ColumnViewReadsStoredValuesZeroCopy) {
  Relation r(EdgeSchema());
  ASSERT_TRUE(r.InsertBatch({{Value::Number(10), Value::Number(20)},
                             {Value::Number(11), Value::Number(21)},
                             {Value::Number(12), Value::Number(22)}})
                  .ok());
  Relation::ColumnView src = r.Column(0);
  Relation::ColumnView dst = r.Column(1);
  ASSERT_EQ(src.size(), 3u);
  EXPECT_EQ(src.at(0).AsNumber(), 10);
  EXPECT_EQ(src.at(2).AsNumber(), 12);
  EXPECT_EQ(dst.at(1).AsNumber(), 21);
  // All-number column with no sidecar: the unboxed fast-path shape.
  EXPECT_TRUE(src.uniform_number());
  ASSERT_NE(src.words(), nullptr);
  EXPECT_EQ(src.kinds(), nullptr);
  EXPECT_EQ(src.words()[1], 11);
  // Slices share the same storage, offset.
  Relation::ColumnView slice = r.ColumnSlice(0, 1, 3);
  ASSERT_EQ(slice.size(), 2u);
  EXPECT_EQ(slice.at(0).AsNumber(), 11);
  EXPECT_EQ(slice.words(), src.words() + 1);
  // Out-of-range column / empty range: empty view.
  EXPECT_EQ(r.Column(7).size(), 0u);
  EXPECT_EQ(r.ColumnSlice(0, 2, 2).size(), 0u);
}

TEST(RelationColumnTest, MixedKindColumnDegradesToTaggedStorage) {
  RelationSchema s;
  s.name = "mixed";
  s.columns = {{"k", ValueType::kNumber}, {"v", ValueType::kNumber}};
  Relation r(s);
  r.Insert({Value::Number(1), Value::Number(5)});
  r.Insert({Value::Number(2), Value::Float(2.5)});  // sidecar materializes
  r.Insert({Value::Number(3), Value::Bool(true)});
  Relation::ColumnView v = r.Column(1);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_FALSE(v.uniform_number());
  ASSERT_NE(v.kinds(), nullptr);
  EXPECT_EQ(v.at(0), Value::Number(5));
  EXPECT_EQ(v.at(1), Value::Float(2.5));
  EXPECT_EQ(v.at(2), Value::Bool(true));
  // The key column is untouched by its sibling's degradation.
  EXPECT_TRUE(r.Column(0).uniform_number());
  // Dedup still distinguishes kinds with identical payload bits.
  EXPECT_TRUE(r.Contains({Value::Number(1), Value::Number(5)}));
  EXPECT_FALSE(r.Contains({Value::Number(1), Value::Float(5.0)}) &&
               Value::Number(5) == Value::Float(5.0));
}

TEST(RelationColumnTest, MaterializeRowsMatchesRowsView) {
  Relation r(EdgeSchema());
  ASSERT_TRUE(r.InsertBatch({{Value::Number(1), Value::Number(2)},
                             {Value::Number(3), Value::Number(4)},
                             {Value::Number(5), Value::Number(6)}})
                  .ok());
  EXPECT_EQ(r.MaterializeRows(), r.rows());
  std::vector<Tuple> suffix = r.MaterializeRows(2);
  ASSERT_EQ(suffix.size(), 1u);
  EXPECT_EQ(suffix[0][0].AsNumber(), 5);
  EXPECT_TRUE(r.MaterializeRows(99).empty());
}

TEST(RelationColumnTest, ReleaseColumnsHandsBackColumnsAndResets) {
  Relation r(EdgeSchema());
  ASSERT_TRUE(r.InsertBatch({{Value::Number(1), Value::Number(2)},
                             {Value::Number(3), Value::Number(4)},
                             {Value::Number(1), Value::Number(2)}})
                  .ok());
  std::vector<std::vector<Value>> cols = r.ReleaseColumns();
  ASSERT_EQ(cols.size(), 2u);
  ASSERT_EQ(cols[0].size(), 2u);  // duplicate dropped
  EXPECT_EQ(cols[0][1], Value::Number(3));
  EXPECT_EQ(cols[1][0], Value::Number(2));
  EXPECT_EQ(r.size(), 0u);
  EXPECT_TRUE(r.Insert({Value::Number(1), Value::Number(2)}).value());
}

TEST(RelationColumnTest, InsertColumnsRecyclesStagingBuffers) {
  Relation r(EdgeSchema());
  std::vector<std::vector<Value>> staged(2);
  staged[0] = {Value::Number(1), Value::Number(1)};
  staged[1] = {Value::Number(2), Value::Number(2)};
  Result<size_t> inserted = r.InsertColumns(&staged);
  ASSERT_TRUE(inserted.ok());
  EXPECT_EQ(*inserted, 1u);  // in-batch duplicate dropped
  // Staged columns come back cleared (capacity retained) for reuse.
  EXPECT_TRUE(staged[0].empty());
  EXPECT_TRUE(staged[1].empty());
  staged[0] = {Value::Number(1), Value::Number(9)};
  staged[1] = {Value::Number(2), Value::Number(9)};
  inserted = r.InsertColumns(&staged);
  ASSERT_TRUE(inserted.ok());
  EXPECT_EQ(*inserted, 1u);  // cross-batch duplicate dropped
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.rows()[1], (Tuple{Value::Number(9), Value::Number(9)}));
}

// ---------------------------------------------------------------------------
// Randomized differential suite: the row-compatible API (Insert /
// InsertBatch / rows) and the columnar API (InsertColumns / ColumnView)
// must agree on contents, insertion order, dedup decisions, and index
// row-lists for identical input streams. Runs under the tsan CI filter.
// ---------------------------------------------------------------------------

class StorageDifferentialTest : public ::testing::Test {
 protected:
  // Feeds `stream` through per-tuple Insert, chunked InsertBatch, and
  // chunked InsertColumns, then cross-checks all three relations.
  void RunDifferential(const std::vector<Tuple>& stream, size_t arity,
                       size_t chunk) {
    RelationSchema s;
    s.name = "diff";
    for (size_t c = 0; c < arity; ++c) {
      s.columns.push_back(Column{"c" + std::to_string(c), ValueType::kNumber});
    }
    Relation serial(s);
    Relation batched(s);
    Relation columnar(s);
    std::vector<bool> serial_decisions;
    for (const Tuple& t : stream) {
      serial_decisions.push_back(serial.Insert(t).value());
    }
    size_t batched_inserted = 0;
    size_t columnar_inserted = 0;
    for (size_t begin = 0; begin < stream.size(); begin += chunk) {
      size_t end = std::min(stream.size(), begin + chunk);
      Result<size_t> b = batched.InsertBatch(
          std::vector<Tuple>(stream.begin() + static_cast<ptrdiff_t>(begin),
                             stream.begin() + static_cast<ptrdiff_t>(end)));
      ASSERT_TRUE(b.ok());
      batched_inserted += *b;
      std::vector<std::vector<Value>> staged(arity);
      for (size_t i = begin; i < end; ++i) {
        for (size_t c = 0; c < arity; ++c) staged[c].push_back(stream[i][c]);
      }
      Result<size_t> cr = columnar.InsertColumns(&staged);
      ASSERT_TRUE(cr.ok());
      columnar_inserted += *cr;
    }
    // Same dedup decisions in aggregate...
    size_t serial_inserted = 0;
    for (bool d : serial_decisions) serial_inserted += d;
    EXPECT_EQ(batched_inserted, serial_inserted);
    EXPECT_EQ(columnar_inserted, serial_inserted);
    // ...and identical contents in identical insertion order.
    ASSERT_EQ(serial.size(), batched.size());
    ASSERT_EQ(serial.size(), columnar.size());
    const std::vector<Tuple>& expect = serial.rows();
    for (size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(expect[i], batched.rows()[i]) << "batched row " << i;
      EXPECT_EQ(expect[i], columnar.rows()[i]) << "columnar row " << i;
      for (size_t c = 0; c < arity; ++c) {
        EXPECT_EQ(columnar.Column(c).at(i), expect[i][c])
            << "column view (" << i << ", " << c << ")";
      }
    }
    // Identical per-key index row-lists on every single-column key.
    for (size_t c = 0; c < arity; ++c) {
      const Relation::KeyIndex& si = serial.GetIndex({static_cast<int>(c)});
      const Relation::KeyIndex& bi = batched.GetIndex({static_cast<int>(c)});
      const Relation::KeyIndex& ci = columnar.GetIndex({static_cast<int>(c)});
      ASSERT_EQ(si.size(), bi.size());
      ASSERT_EQ(si.size(), ci.size());
      for (const auto& [key, rows] : si) {
        ASSERT_NE(bi.find(key), bi.end());
        ASSERT_NE(ci.find(key), ci.end());
        EXPECT_EQ(bi.at(key), rows);
        EXPECT_EQ(ci.at(key), rows);
      }
    }
    // Contains agrees everywhere (present and absent probes).
    for (size_t i = 0; i < stream.size(); i += 7) {
      EXPECT_TRUE(batched.Contains(stream[i]));
      EXPECT_TRUE(columnar.Contains(stream[i]));
    }
  }
};

TEST_F(StorageDifferentialTest, PairNumericFastPath) {
  // Arity-2 all-kNumber: the unboxed InsertPairNumeric path, duplicate
  // heavy so dedup decisions genuinely differ per tuple.
  std::mt19937 rng(1234);
  std::uniform_int_distribution<int> pick(0, 23);
  std::vector<Tuple> stream;
  for (int i = 0; i < 800; ++i) {
    stream.push_back({Value::Number(pick(rng)), Value::Number(pick(rng))});
  }
  RunDifferential(stream, 2, 64);
}

TEST_F(StorageDifferentialTest, MixedKindGenericPath) {
  // Arity-3 with floats/bools mixed in: the generic boxed path, including
  // sidecar materialization mid-stream.
  std::mt19937 rng(4321);
  std::uniform_int_distribution<int> pick(0, 11);
  std::uniform_int_distribution<int> kind(0, 3);
  auto value = [&]() -> Value {
    switch (kind(rng)) {
      case 0: return Value::Number(pick(rng));
      case 1: return Value::Float(pick(rng) / 2.0);
      case 2: return Value::Bool(pick(rng) % 2 == 0);
      default: return Value::Number(-pick(rng));
    }
  };
  std::vector<Tuple> stream;
  for (int i = 0; i < 600; ++i) {
    stream.push_back({value(), value(), value()});
  }
  RunDifferential(stream, 3, 37);
}

TEST_F(StorageDifferentialTest, TinyChunksMatchWholeBatch) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> pick(0, 9);
  std::vector<Tuple> stream;
  for (int i = 0; i < 200; ++i) {
    stream.push_back({Value::Number(pick(rng)), Value::Number(pick(rng))});
  }
  RunDifferential(stream, 2, 1);
  RunDifferential(stream, 2, 200);
}

// ---------------------------------------------------------------------------
// 32-bit row-index ceiling: batch paths report a Status (relation and
// staged batch unmodified) instead of the legacy abort.
// ---------------------------------------------------------------------------

TEST(RelationOverflowTest, InsertBatchReportsRowLimitAsStatus) {
  Relation r(EdgeSchema());
  r.SetRowLimitForTesting(3);
  ASSERT_TRUE(r.InsertBatch({{Value::Number(1), Value::Number(2)},
                             {Value::Number(3), Value::Number(4)}})
                  .ok());
  Result<size_t> res = r.InsertBatch({{Value::Number(5), Value::Number(6)},
                                      {Value::Number(7), Value::Number(8)}});
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInternal);
  EXPECT_NE(res.status().message().find("row-index ceiling"),
            std::string::npos)
      << res.status().ToString();
  // The failed batch left the relation untouched.
  EXPECT_EQ(r.size(), 2u);
  EXPECT_FALSE(r.Contains({Value::Number(5), Value::Number(6)}));
  // A batch that fits still lands.
  ASSERT_TRUE(r.InsertBatch({{Value::Number(5), Value::Number(6)}}).ok());
  EXPECT_EQ(r.size(), 3u);
}

TEST(RelationOverflowTest, CheckIsConservativeBeforeDedup) {
  // The room check counts the whole batch before deduplication: a
  // duplicate-only batch that would not actually grow the relation is
  // still rejected once it could overflow. Loud beats subtly wrong here.
  Relation r(EdgeSchema());
  r.SetRowLimitForTesting(2);
  ASSERT_TRUE(r.InsertBatch({{Value::Number(1), Value::Number(2)},
                             {Value::Number(3), Value::Number(4)}})
                  .ok());
  Result<size_t> res = r.InsertBatch({{Value::Number(1), Value::Number(2)}});
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(r.size(), 2u);
}

TEST(RelationOverflowTest, InsertColumnsReportsAndPreservesStaging) {
  Relation r(EdgeSchema());
  r.SetRowLimitForTesting(1);
  ASSERT_TRUE(r.Insert({Value::Number(1), Value::Number(2)}).value());
  std::vector<std::vector<Value>> staged(2);
  staged[0] = {Value::Number(5)};
  staged[1] = {Value::Number(6)};
  Result<size_t> res = r.InsertColumns(&staged);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInternal);
  // On error the staged columns are NOT consumed.
  ASSERT_EQ(staged[0].size(), 1u);
  EXPECT_EQ(staged[0][0], Value::Number(5));
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationSchemaTest, ColumnIndex) {
  RelationSchema s = EdgeSchema();
  EXPECT_EQ(s.ColumnIndex("src"), 0);
  EXPECT_EQ(s.ColumnIndex("dst"), 1);
  EXPECT_EQ(s.ColumnIndex("missing"), -1);
  EXPECT_EQ(s.ToString(), "edge(src: number, dst: number)");
}

TEST(DatabaseTest, CreateAndLookup) {
  Database db;
  auto rel = db.CreateRelation(EdgeSchema());
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE(db.HasRelation("edge"));
  EXPECT_FALSE(db.CreateRelation(EdgeSchema()).ok());  // duplicate
  auto missing = db.GetRelation("missing");
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(db.RelationNames(), std::vector<std::string>{"edge"});
}

TEST(DatabaseTest, StrInternsSymbols) {
  Database db;
  Value a = db.Str("alpha");
  Value b = db.Str("alpha");
  EXPECT_EQ(a, b);
  EXPECT_EQ(db.symbols().Resolve(a.AsSymbol()), "alpha");
}

TEST(CsvTest, LoadTypedFields) {
  Database db;
  RelationSchema s;
  s.name = "person";
  s.columns = {{"id", ValueType::kNumber},
               {"name", ValueType::kSymbol},
               {"score", ValueType::kFloat}};
  Relation* rel = *db.CreateRelation(s);
  Status st = LoadDelimitedText(&db, rel, "1\tada\t2.5\n2\tbob\t1.0\n");
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(rel->size(), 2u);
  EXPECT_EQ(rel->rows()[0][1], db.Str("ada"));
  EXPECT_DOUBLE_EQ(rel->rows()[0][2].AsFloat(), 2.5);
}

TEST(CsvTest, RejectsArityMismatch) {
  Database db;
  Relation* rel = *db.CreateRelation(EdgeSchema());
  Status st = LoadDelimitedText(&db, rel, "1\t2\t3\n");
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(CsvTest, RejectsBadNumber) {
  Database db;
  Relation* rel = *db.CreateRelation(EdgeSchema());
  Status st = LoadDelimitedText(&db, rel, "1\tnotanumber\n");
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(CsvTest, ReportsLineColumnAndTokenOfBadField) {
  Database db;
  Relation* rel = *db.CreateRelation(EdgeSchema());
  // Line 2, second field (character column 3 of "3\tx"): the error must
  // pinpoint all three and quote the offending token.
  Status st = LoadDelimitedText(&db, rel, "1\t2\n3\tx\n");
  ASSERT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("line 2"), std::string::npos) << st.ToString();
  EXPECT_NE(st.message().find("column 3"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("field 2"), std::string::npos) << st.ToString();
  EXPECT_NE(st.message().find("'x'"), std::string::npos) << st.ToString();
  // Errors surface before anything is inserted (batch-parsed load).
  EXPECT_EQ(rel->size(), 0u);
}

TEST(CsvTest, RoundTrips) {
  Database db;
  RelationSchema s;
  s.name = "r";
  s.columns = {{"id", ValueType::kNumber}, {"name", ValueType::kSymbol}};
  Relation* rel = *db.CreateRelation(s);
  ASSERT_TRUE(LoadDelimitedText(&db, rel, "1\tada\n2\tbob\n").ok());
  EXPECT_EQ(DumpDelimitedText(db, *rel), "1\tada\n2\tbob\n");
}

}  // namespace
}  // namespace raqlet
