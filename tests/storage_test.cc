// Unit tests for storage/: Relation dedup/indexing, Database, CSV IO.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <thread>

#include "storage/csv.h"
#include "storage/database.h"
#include "storage/relation.h"

namespace raqlet {
namespace {

RelationSchema EdgeSchema(const std::string& name = "edge") {
  RelationSchema s;
  s.name = name;
  s.columns = {{"src", ValueType::kNumber}, {"dst", ValueType::kNumber}};
  return s;
}

TEST(RelationTest, InsertDeduplicates) {
  Relation r(EdgeSchema());
  EXPECT_TRUE(r.Insert({Value::Number(1), Value::Number(2)}));
  EXPECT_FALSE(r.Insert({Value::Number(1), Value::Number(2)}));
  EXPECT_TRUE(r.Insert({Value::Number(2), Value::Number(1)}));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains({Value::Number(1), Value::Number(2)}));
  EXPECT_FALSE(r.Contains({Value::Number(9), Value::Number(9)}));
}

TEST(RelationTest, PreservesInsertionOrder) {
  Relation r(EdgeSchema());
  r.Insert({Value::Number(3), Value::Number(4)});
  r.Insert({Value::Number(1), Value::Number(2)});
  ASSERT_EQ(r.rows().size(), 2u);
  EXPECT_EQ(r.rows()[0][0].AsNumber(), 3);
  EXPECT_EQ(r.rows()[1][0].AsNumber(), 1);
}

TEST(RelationTest, IndexGroupsByKey) {
  Relation r(EdgeSchema());
  r.Insert({Value::Number(1), Value::Number(2)});
  r.Insert({Value::Number(1), Value::Number(3)});
  r.Insert({Value::Number(2), Value::Number(3)});
  const auto& index = r.GetIndex({0});
  auto it = index.find(Tuple{Value::Number(1)});
  ASSERT_NE(it, index.end());
  EXPECT_EQ(it->second.size(), 2u);
}

TEST(RelationTest, IndexIsMaintainedIncrementally) {
  Relation r(EdgeSchema());
  r.Insert({Value::Number(1), Value::Number(2)});
  const auto& index1 = r.GetIndex({0});
  EXPECT_EQ(index1.size(), 1u);
  // Insert after the index was built; next GetIndex folds it in.
  r.Insert({Value::Number(5), Value::Number(6)});
  const auto& index2 = r.GetIndex({0});
  EXPECT_EQ(index2.size(), 2u);
  auto it = index2.find(Tuple{Value::Number(5)});
  ASSERT_NE(it, index2.end());
  EXPECT_EQ(it->second[0], 1u);
}

TEST(RelationTest, EnsureIndexMatchesGetIndexAndStaysCurrent) {
  Relation r(EdgeSchema());
  r.Insert({Value::Number(1), Value::Number(2)});
  const Relation::KeyIndex* index = r.EnsureIndex({0});
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->size(), 1u);
  r.Insert({Value::Number(5), Value::Number(6)});
  // Same cache entry (pointer-stable), folded up to the new rows.
  EXPECT_EQ(r.EnsureIndex({0}), index);
  EXPECT_EQ(index->size(), 2u);
  EXPECT_EQ(&r.GetIndex({0}), index);
}

// Multi-reader phase of the relation threading contract: once the index
// is up to date and no writer is active, concurrent EnsureIndex calls and
// probes are safe (the tsan CI leg checks this for real).
TEST(RelationTest, EnsureIndexIsSafeUnderConcurrentReaders) {
  Relation r(EdgeSchema());
  for (int i = 0; i < 256; ++i) {
    r.Insert({Value::Number(i % 16), Value::Number(i)});
  }
  std::atomic<size_t> total_hits{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&r, &total_hits] {
      for (int pass = 0; pass < 50; ++pass) {
        const Relation::KeyIndex* index = r.EnsureIndex({0});
        auto it = index->find(Tuple{Value::Number(3)});
        if (it != index->end()) total_hits.fetch_add(it->second.size());
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(total_hits.load(), 4u * 50u * 16u);
}

TEST(RelationTest, InsertBatchDedupsWithinAndAcrossBatches) {
  Relation r(EdgeSchema());
  r.Insert({Value::Number(1), Value::Number(2)});
  // Batch: duplicate of an existing row, an internal duplicate pair, and
  // two new rows. Order of survivors must be batch order.
  size_t inserted = r.InsertBatch({
      {Value::Number(1), Value::Number(2)},  // already present
      {Value::Number(3), Value::Number(4)},
      {Value::Number(3), Value::Number(4)},  // duplicate within the batch
      {Value::Number(5), Value::Number(6)},
  });
  EXPECT_EQ(inserted, 2u);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r.rows()[1][0].AsNumber(), 3);
  EXPECT_EQ(r.rows()[2][0].AsNumber(), 5);
  EXPECT_TRUE(r.Contains({Value::Number(5), Value::Number(6)}));
  EXPECT_FALSE(r.Contains({Value::Number(5), Value::Number(7)}));
  EXPECT_EQ(r.InsertBatch({}), 0u);  // empty batch is a no-op
  EXPECT_EQ(r.size(), 3u);
}

TEST(RelationTest, ReleaseRowsHandsOverStorageAndResets) {
  // The graph engine's batch DISTINCT uses a scratch Relation purely as a
  // deduplicator: InsertBatch, then take the surviving rows by move.
  Relation r(EdgeSchema());
  r.InsertBatch({
      {Value::Number(1), Value::Number(2)},
      {Value::Number(3), Value::Number(4)},
      {Value::Number(1), Value::Number(2)},  // duplicate, dropped
  });
  std::vector<Tuple> rows = r.ReleaseRows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].AsNumber(), 1);
  EXPECT_EQ(rows[1][0].AsNumber(), 3);
  // The relation is empty and fully reusable afterwards.
  EXPECT_EQ(r.size(), 0u);
  EXPECT_FALSE(r.Contains({Value::Number(1), Value::Number(2)}));
  EXPECT_TRUE(r.Insert({Value::Number(1), Value::Number(2)}));
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, InsertBatchMatchesTupleAtATimeInsertion) {
  // Randomized equivalence: feeding the same (duplicate-heavy) stream
  // through Insert and through chunked InsertBatch must produce identical
  // contents in identical order.
  std::mt19937 rng(99);
  std::uniform_int_distribution<int> pick(0, 15);
  std::vector<Tuple> stream;
  for (int i = 0; i < 500; ++i) {
    stream.push_back({Value::Number(pick(rng)), Value::Number(pick(rng))});
  }
  Relation serial(EdgeSchema());
  for (const Tuple& t : stream) serial.Insert(t);
  Relation batched(EdgeSchema("edge2"));
  for (size_t begin = 0; begin < stream.size(); begin += 64) {
    size_t end = std::min(stream.size(), begin + 64);
    batched.InsertBatch(
        std::vector<Tuple>(stream.begin() + begin, stream.begin() + end));
  }
  ASSERT_EQ(serial.size(), batched.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial.rows()[i], batched.rows()[i]) << "row " << i;
  }
}

TEST(RelationTest, InsertBatchKeepsCachedIndexesCurrent) {
  Relation r(EdgeSchema());
  r.Insert({Value::Number(1), Value::Number(2)});
  const Relation::KeyIndex* index = r.EnsureIndex({0});
  EXPECT_EQ(index->size(), 1u);
  // The batch must fold the new suffix into the cached index eagerly —
  // the EnsureIndex pointer stays valid and sees the new keys.
  r.InsertBatch({{Value::Number(1), Value::Number(3)},
                 {Value::Number(7), Value::Number(8)}});
  EXPECT_EQ(r.EnsureIndex({0}), index);
  EXPECT_EQ(index->size(), 2u);
  auto it = index->find(Tuple{Value::Number(1)});
  ASSERT_NE(it, index->end());
  EXPECT_EQ(it->second, (std::vector<uint32_t>{0, 1}));  // ascending rows
}

TEST(RelationTest, InsertBatchWatermarkSurvivesInterleavedIndexUse) {
  // Batches interleaved with GetIndex/EnsureIndex and single inserts:
  // each index entry must be folded exactly once per row regardless of
  // which operation triggers the fold.
  Relation r(EdgeSchema());
  r.InsertBatch({{Value::Number(1), Value::Number(1)},
                 {Value::Number(1), Value::Number(2)}});
  const auto& by_src = r.GetIndex({0});  // built after the first batch
  EXPECT_EQ(by_src.at(Tuple{Value::Number(1)}).size(), 2u);
  r.Insert({Value::Number(1), Value::Number(3)});  // lazy fold pending
  r.InsertBatch({{Value::Number(1), Value::Number(4)},
                 {Value::Number(2), Value::Number(1)}});  // eager fold
  EXPECT_EQ(by_src.at(Tuple{Value::Number(1)}).size(), 4u);
  const auto& by_dst = r.GetIndex({1});  // fresh index after both batches
  EXPECT_EQ(by_dst.at(Tuple{Value::Number(1)}).size(), 2u);
  EXPECT_EQ(by_src.at(Tuple{Value::Number(1)}),
            (std::vector<uint32_t>{0, 1, 2, 3}));
  // No double-folded (duplicated) row indices anywhere.
  for (const auto& [key, rows] : by_src) {
    for (size_t i = 1; i < rows.size(); ++i) EXPECT_LT(rows[i - 1], rows[i]);
  }
}

TEST(RelationTest, ReplaceRowsResets) {
  Relation r(EdgeSchema());
  r.Insert({Value::Number(1), Value::Number(2)});
  r.GetIndex({0});
  r.ReplaceRows({{Value::Number(7), Value::Number(8)},
                 {Value::Number(7), Value::Number(8)}});
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains({Value::Number(7), Value::Number(8)}));
  EXPECT_EQ(r.GetIndex({0}).size(), 1u);
}

TEST(RelationSchemaTest, ColumnIndex) {
  RelationSchema s = EdgeSchema();
  EXPECT_EQ(s.ColumnIndex("src"), 0);
  EXPECT_EQ(s.ColumnIndex("dst"), 1);
  EXPECT_EQ(s.ColumnIndex("missing"), -1);
  EXPECT_EQ(s.ToString(), "edge(src: number, dst: number)");
}

TEST(DatabaseTest, CreateAndLookup) {
  Database db;
  auto rel = db.CreateRelation(EdgeSchema());
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE(db.HasRelation("edge"));
  EXPECT_FALSE(db.CreateRelation(EdgeSchema()).ok());  // duplicate
  auto missing = db.GetRelation("missing");
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(db.RelationNames(), std::vector<std::string>{"edge"});
}

TEST(DatabaseTest, StrInternsSymbols) {
  Database db;
  Value a = db.Str("alpha");
  Value b = db.Str("alpha");
  EXPECT_EQ(a, b);
  EXPECT_EQ(db.symbols().Resolve(a.AsSymbol()), "alpha");
}

TEST(CsvTest, LoadTypedFields) {
  Database db;
  RelationSchema s;
  s.name = "person";
  s.columns = {{"id", ValueType::kNumber},
               {"name", ValueType::kSymbol},
               {"score", ValueType::kFloat}};
  Relation* rel = *db.CreateRelation(s);
  Status st = LoadDelimitedText(&db, rel, "1\tada\t2.5\n2\tbob\t1.0\n");
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(rel->size(), 2u);
  EXPECT_EQ(rel->rows()[0][1], db.Str("ada"));
  EXPECT_DOUBLE_EQ(rel->rows()[0][2].AsFloat(), 2.5);
}

TEST(CsvTest, RejectsArityMismatch) {
  Database db;
  Relation* rel = *db.CreateRelation(EdgeSchema());
  Status st = LoadDelimitedText(&db, rel, "1\t2\t3\n");
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(CsvTest, RejectsBadNumber) {
  Database db;
  Relation* rel = *db.CreateRelation(EdgeSchema());
  Status st = LoadDelimitedText(&db, rel, "1\tnotanumber\n");
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(CsvTest, RoundTrips) {
  Database db;
  RelationSchema s;
  s.name = "r";
  s.columns = {{"id", ValueType::kNumber}, {"name", ValueType::kSymbol}};
  Relation* rel = *db.CreateRelation(s);
  ASSERT_TRUE(LoadDelimitedText(&db, rel, "1\tada\n2\tbob\n").ok());
  EXPECT_EQ(DumpDelimitedText(db, *rel), "1\tada\n2\tbob\n");
}

}  // namespace
}  // namespace raqlet
