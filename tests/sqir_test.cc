// Tests for DLIR -> SQIR translation and the SQL unparser (Fig. 3e).

#include <gtest/gtest.h>

#include "dlir/parser.h"
#include "sqir/dlir_to_sqir.h"
#include "sqir/sql_printer.h"

namespace raqlet::sqir {
namespace {

dlir::Program Parse(const std::string& text) {
  auto program = dlir::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

// The paper's Fig. 3c chain.
constexpr char kPaperPipeline[] = R"(
.decl Person(id: number, firstName: symbol, locationIP: symbol)
.input Person
.decl City(id: number, name: symbol)
.input City
.decl Person_IS_LOCATED_IN_City(id1: number, id2: number, id: number)
.input Person_IS_LOCATED_IN_City
.decl Match1(n: number, x1: number, p: number)
.decl Where1(n: number, x1: number, p: number)
.decl Return(firstName: symbol, cityId: number)
.output Return
Match1(n, x1, p) :- Person_IS_LOCATED_IN_City(n, p, x1), Person(n, _, _), City(p, _).
Where1(n, x1, p) :- Match1(n, x1, p), Person(n, _, _), n = 42.
Return(firstName, cityId) :- Where1(n, x1, p), Person(n, firstName, _), City(p, _), p = cityId.
)";

TEST(SqirTest, PaperPipelineBecomesV1V2V3) {
  auto sqir = TranslateToSqir(Parse(kPaperPipeline));
  ASSERT_TRUE(sqir.ok()) << sqir.status().ToString();
  ASSERT_EQ(sqir->ctes.size(), 3u);
  EXPECT_EQ(sqir->ctes[0].name, "V1");
  EXPECT_EQ(sqir->ctes[0].source_predicate, "Match1");
  EXPECT_EQ(sqir->ctes[1].name, "V2");
  EXPECT_EQ(sqir->ctes[2].name, "V3");
  EXPECT_EQ(sqir->ctes[2].source_predicate, "Return");
  for (const Cte& cte : sqir->ctes) EXPECT_FALSE(cte.recursive);
  // Conjunction became a join with equality predicates; DISTINCT is set.
  const Select& match = sqir->ctes[0].branches[0];
  EXPECT_TRUE(match.distinct);
  EXPECT_EQ(match.from.size(), 3u);
  EXPECT_GE(match.where.size(), 2u);  // R1.id1 = R2.id, R1.id2 = R3.id
  // Output columns carried through.
  EXPECT_EQ(sqir->output_columns,
            (std::vector<std::string>{"firstName", "cityId"}));
}

TEST(SqirTest, SqlTextMatchesPaperShape) {
  auto sqir = TranslateToSqir(Parse(kPaperPipeline));
  ASSERT_TRUE(sqir.ok());
  std::string sql = ToSql(*sqir);
  EXPECT_NE(sql.find("WITH V1("), std::string::npos);
  EXPECT_NE(sql.find("SELECT DISTINCT"), std::string::npos);
  EXPECT_NE(sql.find("FROM Person_IS_LOCATED_IN_City AS R1"),
            std::string::npos);
  EXPECT_NE(sql.find("= 42"), std::string::npos);
  EXPECT_NE(sql.find("FROM V3"), std::string::npos);
  // Non-recursive chain: no RECURSIVE keyword.
  EXPECT_EQ(sql.find("RECURSIVE"), std::string::npos);
}

constexpr char kTc[] = R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.output tc
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
)";

TEST(SqirTest, RecursiveCteForTc) {
  auto sqir = TranslateToSqir(Parse(kTc));
  ASSERT_TRUE(sqir.ok()) << sqir.status().ToString();
  ASSERT_EQ(sqir->ctes.size(), 1u);
  EXPECT_TRUE(sqir->ctes[0].recursive);
  ASSERT_EQ(sqir->ctes[0].branches.size(), 2u);
  // Base branch first (references only edge), recursive branch second.
  EXPECT_EQ(sqir->ctes[0].branches[0].from.size(), 1u);
  EXPECT_EQ(sqir->ctes[0].branches[1].from.size(), 2u);
  std::string sql = ToSql(*sqir);
  EXPECT_NE(sql.find("WITH RECURSIVE"), std::string::npos);
  EXPECT_NE(sql.find("UNION"), std::string::npos);
}

TEST(SqirTest, RejectsNonLinearRecursion) {
  auto sqir = TranslateToSqir(Parse(R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.output tc
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), tc(z, y).
)"));
  ASSERT_FALSE(sqir.ok());
  EXPECT_EQ(sqir.status().code(), StatusCode::kUnsupported);
}

TEST(SqirTest, RejectsMutualRecursion) {
  auto sqir = TranslateToSqir(Parse(R"(
.decl s(x: number, y: number)
.input s
.decl even(x: number)
.decl odd(x: number)
.output even
even(0).
odd(y) :- even(x), s(x, y).
even(y) :- odd(x), s(x, y).
)"));
  ASSERT_FALSE(sqir.ok());
  EXPECT_EQ(sqir.status().code(), StatusCode::kUnsupported);
}

TEST(SqirTest, NegationBecomesNotExists) {
  auto sqir = TranslateToSqir(Parse(R"(
.decl a(x: number)
.input a
.decl b(x: number)
.input b
.decl out(x: number)
.output out
out(x) :- a(x), !b(x).
)"));
  ASSERT_TRUE(sqir.ok()) << sqir.status().ToString();
  ASSERT_EQ(sqir->ctes[0].branches[0].not_exists.size(), 1u);
  std::string sql = ToSql(*sqir);
  EXPECT_NE(sql.find("NOT EXISTS (SELECT 1 FROM b"), std::string::npos);
}

TEST(SqirTest, AggregateBecomesGroupBy) {
  auto sqir = TranslateToSqir(Parse(R"(
.decl sale(region: symbol, amount: number)
.input sale
.decl total(region: symbol, t: number)
.output total
total(r, sum(a)) :- sale(r, a).
)"));
  ASSERT_TRUE(sqir.ok()) << sqir.status().ToString();
  const Select& sel = sqir->ctes[0].branches[0];
  ASSERT_EQ(sel.group_by.size(), 1u);
  std::string sql = ToSql(*sqir);
  EXPECT_NE(sql.find("SUM("), std::string::npos);
  EXPECT_NE(sql.find("GROUP BY"), std::string::npos);
}

TEST(SqirTest, StringLiteralsUseSingleQuotes) {
  auto sqir = TranslateToSqir(Parse(R"(
.decl person(id: number, name: symbol)
.input person
.decl out(id: number)
.output out
out(x) :- person(x, name), name = "O'Brien".
)"));
  ASSERT_TRUE(sqir.ok()) << sqir.status().ToString();
  std::string sql = ToSql(*sqir);
  EXPECT_NE(sql.find("'O''Brien'"), std::string::npos);
}

TEST(SqirTest, PredicateNamesWhenVNamesDisabled) {
  SqirOptions options;
  options.use_v_names = false;
  auto sqir = TranslateToSqir(Parse(kTc), options);
  ASSERT_TRUE(sqir.ok());
  EXPECT_EQ(sqir->ctes[0].name, "tc");
}

TEST(SqirTest, MultipleOutputsRejected) {
  auto sqir = TranslateToSqir(Parse(R"(
.decl a(x: number)
.input a
.decl b(x: number)
.decl c(x: number)
.output b
.output c
b(x) :- a(x).
c(x) :- a(x).
)"));
  ASSERT_FALSE(sqir.ok());
  EXPECT_EQ(sqir.status().code(), StatusCode::kUnsupported);
}

}  // namespace
}  // namespace raqlet::sqir
