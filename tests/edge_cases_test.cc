// Edge-case battery across modules: empty inputs, symbol ordering, float
// arithmetic, deep recursion, zero-length paths, lattice max, and a
// random-program differential between the Datalog and SQL engines.

#include <gtest/gtest.h>

#include <random>

#include "dlir/parser.h"
#include "engine/datalog/engine.h"
#include "engine/sql/executor.h"
#include "raqlet/compiler.h"
#include "sqir/dlir_to_sqir.h"

namespace raqlet {
namespace {

dlir::Program Parse(const std::string& text) {
  auto program = dlir::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

Database EdgeDb(const std::vector<std::pair<int, int>>& edges) {
  Database db;
  RelationSchema s;
  s.name = "edge";
  s.columns = {{"x", ValueType::kNumber}, {"y", ValueType::kNumber}};
  Relation* rel = *db.CreateRelation(s);
  for (auto [x, y] : edges) rel->Insert({Value::Number(x), Value::Number(y)});
  return db;
}

std::set<std::string> Rows(const Database& db, const std::string& rel) {
  std::set<std::string> out;
  for (const Tuple& row : (*db.GetRelation(rel))->rows()) {
    out.insert(TupleToString(row, &db.symbols()));
  }
  return out;
}

TEST(EdgeCaseTest, EmptyEdbYieldsEmptyOutput) {
  Database db = EdgeDb({});
  engine::DatalogEngine eng;
  ASSERT_TRUE(eng.Run(Parse(R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.output tc
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
)"), &db).ok());
  EXPECT_TRUE((*db.GetRelation("tc"))->empty());
}

TEST(EdgeCaseTest, SelfLoopTc) {
  Database db = EdgeDb({{1, 1}});
  engine::DatalogEngine eng;
  ASSERT_TRUE(eng.Run(Parse(R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.output tc
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
)"), &db).ok());
  EXPECT_EQ(Rows(db, "tc"), (std::set<std::string>{"(1, 1)"}));
}

TEST(EdgeCaseTest, DeepRecursionChain) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < 2000; ++i) edges.emplace_back(i, i + 1);
  Database db = EdgeDb(edges);
  engine::DatalogEngine eng;
  engine::EvalStats stats;
  // Single-source reachability over a 2000-long chain: 2000 rounds.
  ASSERT_TRUE(eng.Run(Parse(R"(
.decl edge(x: number, y: number)
.input edge
.decl reach(y: number)
.output reach
reach(y) :- edge(0, y).
reach(y) :- reach(x), edge(x, y).
)"), &db, &stats).ok());
  EXPECT_EQ((*db.GetRelation("reach"))->size(), 2000u);
  EXPECT_GE(stats.fixpoint_rounds, 1999u);
}

TEST(EdgeCaseTest, SymbolOrderingIsLexicographic) {
  Database db;
  RelationSchema s;
  s.name = "person";
  s.columns = {{"id", ValueType::kNumber}, {"name", ValueType::kSymbol}};
  Relation* rel = *db.CreateRelation(s);
  // Interning order differs from lexicographic order on purpose.
  rel->Insert({Value::Number(1), db.Str("zeta")});
  rel->Insert({Value::Number(2), db.Str("alpha")});
  rel->Insert({Value::Number(3), db.Str("mid")});
  engine::DatalogEngine eng;
  ASSERT_TRUE(eng.Run(Parse(R"(
.decl person(id: number, name: symbol)
.input person
.decl early(id: number)
.output early
early(x) :- person(x, n), n < "mid".
)"), &db).ok());
  EXPECT_EQ(Rows(db, "early"), (std::set<std::string>{"(2)"}));
}

TEST(EdgeCaseTest, FloatArithmeticAndAvg) {
  Database db;
  RelationSchema s;
  s.name = "m";
  s.columns = {{"k", ValueType::kNumber}, {"v", ValueType::kFloat}};
  Relation* rel = *db.CreateRelation(s);
  rel->Insert({Value::Number(1), Value::Float(1.5)});
  rel->Insert({Value::Number(1), Value::Float(2.5)});
  rel->Insert({Value::Number(2), Value::Float(4.0)});
  engine::DatalogEngine eng;
  ASSERT_TRUE(eng.Run(Parse(R"(
.decl m(k: number, v: float)
.input m
.decl mean(k: number, a: float)
.output mean
mean(k, avg(v)) :- m(k, v).
)"), &db).ok());
  const Relation* mean = *db.GetRelation("mean");
  ASSERT_EQ(mean->size(), 2u);
  for (const Tuple& row : mean->rows()) {
    if (row[0].AsNumber() == 1) EXPECT_DOUBLE_EQ(row[1].AsFloat(), 2.0);
    if (row[0].AsNumber() == 2) EXPECT_DOUBLE_EQ(row[1].AsFloat(), 4.0);
  }
}

TEST(EdgeCaseTest, DivisionByZeroIsAnError) {
  Database db = EdgeDb({{1, 0}});
  engine::DatalogEngine eng;
  Status st = eng.Run(Parse(R"(
.decl edge(x: number, y: number)
.input edge
.decl out(q: number)
.output out
out(q) :- edge(x, y), q = x / y.
)"), &db);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(EdgeCaseTest, LatticeMaxKeepsLargest) {
  Database db;
  RelationSchema s;
  s.name = "score";
  s.columns = {{"k", ValueType::kNumber}, {"v", ValueType::kNumber}};
  Relation* rel = *db.CreateRelation(s);
  rel->Insert({Value::Number(1), Value::Number(5)});
  rel->Insert({Value::Number(1), Value::Number(9)});
  rel->Insert({Value::Number(2), Value::Number(3)});
  engine::DatalogEngine eng;
  ASSERT_TRUE(eng.Run(Parse(R"(
.decl score(k: number, v: number)
.input score
.decl best(k: number, v: number) @max
.output best
best(k, v) :- score(k, v).
best(k, v + 1) :- best(k, v), v < 20.
)"), &db).ok());
  // Lattice max with an increment rule converges at the bound.
  EXPECT_EQ(Rows(db, "best"), (std::set<std::string>{"(1, 20)", "(2, 20)"}));
}

TEST(EdgeCaseTest, NegationAgainstEmptyRelation) {
  Database db = EdgeDb({{1, 2}});
  RelationSchema s;
  s.name = "blocked";
  s.columns = {{"x", ValueType::kNumber}};
  (void)db.CreateRelation(s);
  engine::DatalogEngine eng;
  ASSERT_TRUE(eng.Run(Parse(R"(
.decl edge(x: number, y: number)
.input edge
.decl blocked(x: number)
.input blocked
.decl out(x: number)
.output out
out(x) :- edge(x, _), !blocked(x).
)"), &db).ok());
  EXPECT_EQ(Rows(db, "out"), (std::set<std::string>{"(1)"}));
}

TEST(EdgeCaseTest, ZeroLengthPathAcrossEngines) {
  Compiler compiler;
  ASSERT_TRUE(compiler.LoadPgSchema(R"(
CREATE GRAPH {
  (nodeType: Node {id INT}),
  (:nodeType)-[edgeType: linksTo {id INT}]->(:nodeType)
}
)").ok());
  Database db;
  ASSERT_TRUE(compiler.CreateEdbs(&db).ok());
  Relation* node = *db.GetRelation("Node");
  for (int i = 1; i <= 4; ++i) node->Insert({Value::Number(i)});
  Relation* edge = *db.GetRelation("Node_LINKS_TO_Node");
  edge->Insert({Value::Number(1), Value::Number(2), Value::Number(1)});

  auto unit = compiler.CompileCypher(
      "MATCH (a:Node {id: 1})-[:LINKS_TO*0..2]->(b:Node) "
      "RETURN DISTINCT b.id AS id");
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  auto datalog = compiler.RunOnDatalog(unit->dlir, &db);
  ASSERT_TRUE(datalog.ok()) << datalog.status().ToString();
  // Zero hops reaches a itself; one hop reaches 2.
  EXPECT_EQ(datalog->ToStringSet(db.symbols()),
            (std::set<std::string>{"(1)", "(2)"}));
  auto store = compiler.BuildGraphStore(db);
  ASSERT_TRUE(store.ok());
  auto graph = compiler.RunOnGraph(unit->pgir, *store, &db);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->ToStringSet(db.symbols()),
            datalog->ToStringSet(db.symbols()));
}

TEST(EdgeCaseTest, ExactHopCountAcrossEngines) {
  Compiler compiler;
  ASSERT_TRUE(compiler.LoadPgSchema(R"(
CREATE GRAPH {
  (nodeType: Node {id INT}),
  (:nodeType)-[edgeType: linksTo {id INT}]->(:nodeType)
}
)").ok());
  Database db;
  ASSERT_TRUE(compiler.CreateEdbs(&db).ok());
  Relation* node = *db.GetRelation("Node");
  for (int i = 1; i <= 5; ++i) node->Insert({Value::Number(i)});
  Relation* edge = *db.GetRelation("Node_LINKS_TO_Node");
  int eid = 0;
  for (auto [a, b] : std::vector<std::pair<int, int>>{
           {1, 2}, {2, 3}, {3, 4}, {1, 3}}) {
    edge->Insert({Value::Number(a), Value::Number(b), Value::Number(++eid)});
  }
  // *2 = exactly two hops.
  auto unit = compiler.CompileCypher(
      "MATCH (a:Node {id: 1})-[:LINKS_TO*2]->(b:Node) "
      "RETURN DISTINCT b.id AS id");
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  auto datalog = compiler.RunOnDatalog(unit->dlir, &db);
  ASSERT_TRUE(datalog.ok()) << datalog.status().ToString();
  EXPECT_EQ(datalog->ToStringSet(db.symbols()),
            (std::set<std::string>{"(3)", "(4)"}));
  auto store = compiler.BuildGraphStore(db);
  auto graph = compiler.RunOnGraph(unit->pgir, *store, &db);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->ToStringSet(db.symbols()),
            datalog->ToStringSet(db.symbols()));
}

// Random linear-recursion programs: Datalog vs SQL engines must agree.
class RandomProgramDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramDifferentialTest, DatalogAndSqlAgree) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 31 + 11);
  std::uniform_int_distribution<int> node(1, 14);
  std::uniform_int_distribution<int> coin(0, 1);

  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < 30; ++i) edges.emplace_back(node(rng), node(rng));

  // Template family: seeded reachability with an optional filter and an
  // optional extra join.
  int seed_node = node(rng);
  bool with_filter = coin(rng) == 1;
  bool with_join = coin(rng) == 1;
  std::string program_text = R"(
.decl edge(x: number, y: number)
.input edge
.decl reach(y: number)
.decl out(y: number)
.output out
reach(y) :- edge()" + std::to_string(seed_node) + R"(, y).
reach(y) :- reach(x), edge(x, y).
)";
  program_text += "out(y) :- reach(y)";
  if (with_join) program_text += ", edge(y, _)";
  if (with_filter) program_text += ", y > 3";
  program_text += ".\n";

  auto program = Parse(program_text);
  Database db1 = EdgeDb(edges);
  Database db2 = EdgeDb(edges);
  engine::DatalogEngine datalog;
  ASSERT_TRUE(datalog.Run(program, &db1).ok());

  auto sqir = sqir::TranslateToSqir(program);
  ASSERT_TRUE(sqir.ok()) << sqir.status().ToString();
  engine::SqlEngine sql;
  auto result = sql.Run(*sqir, &db2);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Rows(db1, "out"), result->ToStringSet(db2.symbols()))
      << program_text;
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, RandomProgramDifferentialTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace raqlet
