// Tests for the static analyzer: the diagnostics framework, the type
// checker / verifier (typecheck.h), the semantic lints (lints.h), and the
// MLIR-style pass-boundary verification in the PassManager. Every RQ code
// gets at least one exact-code assertion on a minimal program.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/lints.h"
#include "analysis/typecheck.h"
#include "dlir/parser.h"
#include "dlir/program.h"
#include "opt/pass_manager.h"
#include "raqlet/compiler.h"

namespace raqlet::analysis {
namespace {

dlir::Program Parse(const std::string& text) {
  auto program = dlir::ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return program.ok() ? *program : dlir::Program{};
}

/// All diagnostics from CheckProgram (+ optionally LintProgram).
DiagnosticEngine Analyze(const std::string& text, bool lint = false) {
  dlir::Program program = Parse(text);
  DiagnosticEngine diags;
  CheckProgram(program, &diags);
  if (lint) LintProgram(program, &diags);
  return diags;
}

std::vector<std::string> Codes(const DiagnosticEngine& diags) {
  std::vector<std::string> codes;
  for (const Diagnostic& d : diags.diagnostics()) codes.push_back(d.code);
  return codes;
}

// ---------------------------------------------------------------------------
// Diagnostic framework
// ---------------------------------------------------------------------------

TEST(DiagnosticEngineTest, AccumulatesAndCounts) {
  DiagnosticEngine diags;
  diags.Error("RQ999", "first").Note("extra context");
  diags.Warning("RQ998", "second");
  EXPECT_EQ(diags.error_count(), 1u);
  EXPECT_EQ(diags.warning_count(), 1u);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_FALSE(diags.empty());
  EXPECT_TRUE(diags.HasCode("RQ999"));
  EXPECT_FALSE(diags.HasCode("RQ000"));
  std::string rendered = diags.Render();
  EXPECT_NE(rendered.find("error[RQ999]: first"), std::string::npos);
  EXPECT_NE(rendered.find("note: extra context"), std::string::npos);
  EXPECT_NE(rendered.find("warning[RQ998]: second"), std::string::npos);
  EXPECT_NE(rendered.find("1 error(s), 1 warning(s)"), std::string::npos);
}

TEST(DiagnosticEngineTest, ToStatusIsOkWithoutErrors) {
  DiagnosticEngine diags;
  diags.Warning("RQ101", "only a warning");
  EXPECT_TRUE(diags.ToStatus().ok());
  diags.Error("RQ002", "now an error");
  Status st = diags.ToStatus("while verifying");
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("while verifying"), std::string::npos);
  EXPECT_NE(st.message().find("RQ002"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Structural errors (the Validate() checks, multi-reported)
// ---------------------------------------------------------------------------

TEST(TypecheckTest, RQ001DuplicateDeclaration) {
  auto diags = Analyze(R"(
.decl edge(x: number, y: number)
.decl edge(x: number, y: number)
)");
  EXPECT_TRUE(diags.HasCode("RQ001"));
  EXPECT_EQ(diags.error_count(), 1u);
}

TEST(TypecheckTest, RQ002UndeclaredPredicate) {
  auto diags = Analyze(R"(
.decl out(x: number)
.output out
out(x) :- ghost(x).
)");
  EXPECT_TRUE(diags.HasCode("RQ002"));
}

TEST(TypecheckTest, RQ003ArityMismatch) {
  auto diags = Analyze(R"(
.decl edge(x: number, y: number)
.input edge
.decl out(x: number)
.output out
out(x) :- edge(x).
)");
  EXPECT_TRUE(diags.HasCode("RQ003"));
}

TEST(TypecheckTest, RQ004UnsafeHeadVariable) {
  auto diags = Analyze(R"(
.decl edge(x: number, y: number)
.input edge
.decl out(x: number, y: number)
.output out
out(x, z) :- edge(x, _).
)");
  EXPECT_TRUE(diags.HasCode("RQ004"));
}

TEST(TypecheckTest, RQ004UnsafeAggregateInput) {
  // Validate() never looked at aggregate input terms; the analyzer does.
  auto diags = Analyze(R"(
.decl sale(region: symbol, amount: number)
.input sale
.decl total(region: symbol, t: number)
.output total
total(region, sum(ghostvar)) :- sale(region, amount).
)");
  EXPECT_TRUE(diags.HasCode("RQ004"));
}

TEST(TypecheckTest, RQ005AggregateResultPositionOutOfRange) {
  dlir::Program program = Parse(R"(
.decl sale(region: symbol, amount: number)
.input sale
.decl total(region: symbol, t: number)
.output total
total(region, sum(amount)) :- sale(region, amount).
)");
  program.rules[0].agg_result_pos = 7;  // corrupt it
  DiagnosticEngine diags;
  CheckProgram(program, &diags);
  EXPECT_TRUE(diags.HasCode("RQ005"));
}

TEST(TypecheckTest, RQ006NonNumericLatticeColumn) {
  // Satellite fix: Validate() silently accepted @min/@max over a symbol
  // column; the engines' lattice merge compares NumericValue()s, so this
  // was garbage at runtime. Now a hard error.
  auto diags = Analyze(R"(
.decl best(x: number, who: symbol) @min
.output best
)");
  EXPECT_TRUE(diags.HasCode("RQ006"));
  dlir::Program program = Parse(R"(
.decl best(x: number, who: symbol) @min
.output best
)");
  EXPECT_FALSE(VerifyProgram(program).ok());
}

TEST(TypecheckTest, NumericLatticeColumnIsFine) {
  auto diags = Analyze(R"(
.decl edge(x: number, y: number)
.input edge
.decl dist(x: number, y: number, d: number) @min
.output dist
dist(x, y, 1) :- edge(x, y).
dist(x, y, d + 1) :- dist(x, z, d), edge(z, y).
)");
  EXPECT_FALSE(diags.has_errors()) << diags.Render();
}

// ---------------------------------------------------------------------------
// Type errors
// ---------------------------------------------------------------------------

TEST(TypecheckTest, RQ010ConflictingColumnTypes) {
  auto diags = Analyze(R"(
.decl edge(x: number, y: number)
.input edge
.decl name(id: number, n: symbol)
.input name
.decl out(x: number)
.output out
out(x) :- edge(x, v), name(_, v).
)");
  EXPECT_TRUE(diags.HasCode("RQ010"));
}

TEST(TypecheckTest, RQ011ConstantColumnMismatch) {
  auto diags = Analyze(R"(
.decl edge(x: number, y: number)
.input edge
.decl out(x: number)
.output out
out(x) :- edge(x, "two").
)");
  EXPECT_TRUE(diags.HasCode("RQ011"));
}

TEST(TypecheckTest, RQ012IncomparableComparison) {
  auto diags = Analyze(R"(
.decl name(id: number, n: symbol)
.input name
.decl out(x: number)
.output out
out(id) :- name(id, n), n > 5.
)");
  EXPECT_TRUE(diags.HasCode("RQ012"));
}

TEST(TypecheckTest, RQ013NonNumericArithmetic) {
  auto diags = Analyze(R"(
.decl name(id: number, n: symbol)
.input name
.decl out(x: number)
.output out
out(id) :- name(id, n), v = n + 1, v > 0.
)");
  EXPECT_TRUE(diags.HasCode("RQ013"));
}

TEST(TypecheckTest, RQ014NonNumericAggregateInput) {
  auto diags = Analyze(R"(
.decl name(id: number, n: symbol)
.input name
.decl total(id: number, t: number)
.output total
total(id, sum(n)) :- name(id, n).
)");
  EXPECT_TRUE(diags.HasCode("RQ014"));
}

TEST(TypecheckTest, CountOverSymbolIsFine) {
  auto diags = Analyze(R"(
.decl name(id: number, n: symbol)
.input name
.decl total(id: number, t: number)
.output total
total(id, count(n)) :- name(id, n).
)");
  EXPECT_FALSE(diags.HasCode("RQ014")) << diags.Render();
}

TEST(TypecheckTest, RQ015NonNumericAggregateResultColumn) {
  auto diags = Analyze(R"(
.decl sale(region: symbol, amount: number)
.input sale
.decl total(region: symbol, t: symbol)
.output total
total(region, sum(amount)) :- sale(region, amount).
)");
  EXPECT_TRUE(diags.HasCode("RQ015"));
}

TEST(TypecheckTest, RQ020StratificationViolationWithCyclePath) {
  auto diags = Analyze(R"(
.decl edge(x: number, y: number)
.input edge
.decl p(x: number)
.decl q(x: number)
.output p
p(x) :- edge(x, _), !q(x).
q(x) :- p(x).
)");
  ASSERT_TRUE(diags.HasCode("RQ020"));
  // The note renders the whole negation cycle, not just the edge.
  std::string rendered = diags.Render();
  EXPECT_NE(rendered.find("negation cycle:"), std::string::npos);
  EXPECT_NE(rendered.find("--(negated)-->"), std::string::npos);
}

TEST(TypecheckTest, ReportsEveryErrorNotJustTheFirst) {
  auto diags = Analyze(R"(
.decl edge(x: number, y: number)
.decl edge(x: number, y: number)
.decl out(x: number)
.output out
out(x) :- ghost(x).
out(x) :- edge(x).
out(x) :- edge(x, "two").
)");
  EXPECT_TRUE(diags.HasCode("RQ001"));
  EXPECT_TRUE(diags.HasCode("RQ002"));
  EXPECT_TRUE(diags.HasCode("RQ003"));
  EXPECT_TRUE(diags.HasCode("RQ011"));
  EXPECT_GE(diags.error_count(), 4u);
}

TEST(TypecheckTest, CleanProgramHasNoErrors) {
  auto diags = Analyze(R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.output tc
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
)");
  EXPECT_TRUE(diags.empty()) << diags.Render();
}

// ---------------------------------------------------------------------------
// Lints
// ---------------------------------------------------------------------------

TEST(LintTest, RQ101UnusedRelation) {
  auto diags = Analyze(R"(
.decl edge(x: number, y: number)
.input edge
.decl lonely(x: number)
.input lonely
.decl out(x: number)
.output out
out(x) :- edge(x, _).
)",
                       /*lint=*/true);
  EXPECT_TRUE(diags.HasCode("RQ101"));
  EXPECT_FALSE(diags.has_errors());
}

TEST(LintTest, RQ102UnreachableRule) {
  auto diags = Analyze(R"(
.decl edge(x: number, y: number)
.input edge
.decl out(x: number)
.output out
.decl scratch(x: number)
out(x) :- edge(x, _).
scratch(x) :- edge(_, x).
)",
                       /*lint=*/true);
  EXPECT_TRUE(diags.HasCode("RQ102"));
}

TEST(LintTest, RQ103AlwaysEmptyRelation) {
  auto diags = Analyze(R"(
.decl never(x: number)
.decl out(x: number)
.output out
out(x) :- never(x).
)",
                       /*lint=*/true);
  // 'never' has no rules and is not an input; 'out' only depends on it.
  EXPECT_TRUE(diags.HasCode("RQ103"));
}

TEST(LintTest, RQ104CartesianProduct) {
  auto diags = Analyze(R"(
.decl a(x: number)
.input a
.decl b(x: number)
.input b
.decl out(x: number, y: number)
.output out
out(x, y) :- a(x), b(y).
)",
                       /*lint=*/true);
  EXPECT_TRUE(diags.HasCode("RQ104"));
}

TEST(LintTest, ConstraintConnectedAtomsAreNotCartesian) {
  auto diags = Analyze(R"(
.decl a(x: number)
.input a
.decl b(x: number)
.input b
.decl out(x: number, y: number)
.output out
out(x, y) :- a(x), b(y), x = y.
)",
                       /*lint=*/true);
  EXPECT_FALSE(diags.HasCode("RQ104")) << diags.Render();
}

TEST(LintTest, RQ105PossiblyNonTerminatingRecursion) {
  auto diags = Analyze(R"(
.decl seed(x: number)
.input seed
.decl counter(x: number)
.output counter
counter(x) :- seed(x).
counter(x + 1) :- counter(x).
)",
                       /*lint=*/true);
  EXPECT_TRUE(diags.HasCode("RQ105"));
}

TEST(LintTest, RQ106DuplicateRule) {
  // Satellite fix: Validate() silently accepted exact duplicate rules. A
  // warning (not an error) because optimizer passes may legitimately emit
  // duplicates that dedup later — but a hand-written program with one
  // almost certainly holds a typo.
  auto diags = Analyze(R"(
.decl edge(x: number, y: number)
.input edge
.decl out(x: number)
.output out
out(x) :- edge(x, _).
out(x) :- edge(x, _).
)",
                       /*lint=*/true);
  EXPECT_TRUE(diags.HasCode("RQ106"));
  EXPECT_FALSE(diags.has_errors());
}

TEST(LintTest, RQ107ConstantFoldableConstraint) {
  auto diags = Analyze(R"(
.decl edge(x: number, y: number)
.input edge
.decl out(x: number)
.output out
out(x) :- edge(x, _), 1 > 2.
out(x) :- edge(x, _), 2 + 2 = 4.
)",
                       /*lint=*/true);
  std::vector<std::string> codes = Codes(diags);
  EXPECT_GE(std::count(codes.begin(), codes.end(), std::string("RQ107")), 2);
  // The always-false one explains that the rule is dead.
  EXPECT_NE(diags.Render().find("can never fire"), std::string::npos);
}

TEST(LintTest, DivisionByZeroDoesNotFold) {
  auto diags = Analyze(R"(
.decl edge(x: number, y: number)
.input edge
.decl out(x: number)
.output out
out(x) :- edge(x, _), 1 / 0 > 2.
)",
                       /*lint=*/true);
  EXPECT_FALSE(diags.HasCode("RQ107")) << diags.Render();
}

TEST(LintTest, CleanProgramLintsQuiet) {
  auto diags = Analyze(R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.output tc
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
)",
                       /*lint=*/true);
  EXPECT_TRUE(diags.empty()) << diags.Render();
}

// ---------------------------------------------------------------------------
// Pass-boundary verification (the MLIR-style discipline)
// ---------------------------------------------------------------------------

constexpr char kTc[] = R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.output tc
tc(x, y) :- edge(x, y).
tc(x, y) :- tc(x, z), edge(z, y).
)";

TEST(PassVerifyTest, CatchesCorruptPassOutput) {
  opt::PassManager pm;
  pm.AddFn("corrupt", [](const dlir::Program& p) -> Result<dlir::Program> {
    dlir::Program broken = p;
    broken.rules[0].body[0].predicate = "ghost";  // dangling reference
    return broken;
  });
  opt::OptOptions verify_on;
  verify_on.verify_each_pass = true;
  auto result = pm.Run(Parse(kTc), verify_on);
  ASSERT_FALSE(result.ok());
  // Internal (the pass is at fault, not the input), naming the pass and
  // carrying the diagnostic.
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("corrupt"), std::string::npos);
  EXPECT_NE(result.status().message().find("RQ002"), std::string::npos);
}

TEST(PassVerifyTest, VerifyOffPassesCorruptOutputThrough) {
  opt::PassManager pm;
  pm.AddFn("corrupt", [](const dlir::Program& p) -> Result<dlir::Program> {
    dlir::Program broken = p;
    broken.rules[0].body[0].predicate = "ghost";
    return broken;
  });
  opt::OptOptions verify_off;
  verify_off.verify_each_pass = false;
  auto result = pm.Run(Parse(kTc), verify_off);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rules[0].body[0].predicate, "ghost");
}

TEST(PassVerifyTest, RealPipelinesVerifyCleanly) {
  opt::OptOptions verify_on;
  verify_on.verify_each_pass = true;
  auto standard = opt::PassManager::Standard().Run(Parse(kTc), verify_on);
  EXPECT_TRUE(standard.ok()) << standard.status().ToString();
  auto aggressive = opt::PassManager::Aggressive().Run(Parse(kTc), verify_on);
  EXPECT_TRUE(aggressive.ok()) << aggressive.status().ToString();
}

// ---------------------------------------------------------------------------
// Compiler facade + cross-frontend clean checks
// ---------------------------------------------------------------------------

constexpr char kSchema[] = R"(
CREATE GRAPH {
  (personType: Person {id INT, firstName STRING}),
  (cityType: City {id INT, name STRING}),
  (:personType)-[locationType: isLocatedIn {id INT}]->(:cityType),
  (:personType)-[knowsType: knows {id INT}]->(:personType)
}
)";

TEST(CompilerCheckTest, CompileDatalogReportsAllErrors) {
  Compiler compiler;
  auto program = compiler.CompileDatalog(R"(
.decl out(x: number)
.output out
out(x) :- ghost(x).
out(x) :- phantom(x).
)");
  ASSERT_FALSE(program.ok());
  // Both undeclared predicates in one status, not first-error-wins.
  EXPECT_NE(program.status().message().find("ghost"), std::string::npos);
  EXPECT_NE(program.status().message().find("phantom"), std::string::npos);
}

TEST(CompilerCheckTest, ParseDatalogSkipsVerification) {
  Compiler compiler;
  auto program = compiler.ParseDatalog(R"(
.decl out(x: number)
.output out
out(x) :- ghost(x).
)");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_FALSE(compiler.Check(*program).ok());
}

TEST(CompilerCheckTest, CypherLoweringIsClean) {
  Compiler compiler;
  ASSERT_TRUE(compiler.LoadPgSchema(kSchema).ok());
  auto unit = compiler.CompileCypher(
      "MATCH (a:Person {id: 1})-[:KNOWS*]->(b:Person) "
      "RETURN DISTINCT b.id AS id",
      {});
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  EXPECT_TRUE(compiler.Check(unit->dlir).ok());
  EXPECT_TRUE(compiler.Check(unit->optimized).ok());
}

TEST(CompilerCheckTest, GqlLoweringIsClean) {
  Compiler compiler;
  ASSERT_TRUE(compiler.LoadPgSchema(kSchema).ok());
  auto unit = compiler.CompileGql(
      "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.id = 1 "
      "RETURN DISTINCT b.id AS id",
      {});
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  EXPECT_TRUE(compiler.Check(unit->dlir).ok());
  EXPECT_TRUE(compiler.Check(unit->optimized).ok());
}

TEST(CompilerCheckTest, SqlPgqLoweringIsClean) {
  Compiler compiler;
  ASSERT_TRUE(compiler.LoadPgSchema(kSchema).ok());
  auto unit = compiler.CompileSqlPgq(R"(
SELECT DISTINCT *
FROM GRAPH_TABLE (social,
  MATCH (n IS Person WHERE n.id = 1)-[IS isLocatedIn]->(c IS City)
  COLUMNS (n.firstName AS firstName, c.id AS cityId)
)
)",
                                     {});
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  EXPECT_TRUE(compiler.Check(unit->dlir).ok());
  EXPECT_TRUE(compiler.Check(unit->optimized).ok());
}

}  // namespace
}  // namespace raqlet::analysis
