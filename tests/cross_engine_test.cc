// Cross-paradigm differential tests (DESIGN.md §5): the same Cypher query,
// compiled through Raqlet, must produce identical result sets on the
// graph engine (PGIR traversal), the Datalog engine (semi-naive bottom-up)
// and the SQL engine (CTE materialization, both modes) — and the
// optimization pipeline must not change any of them. This is the
// machine-checkable core of the paper's "golden reference" claim (§6).

#include <gtest/gtest.h>

#include <random>

#include "obs/trace.h"
#include "raqlet/compiler.h"

namespace raqlet {
namespace {

constexpr char kSchema[] = R"(
CREATE GRAPH {
  (personType: Person {id INT, firstName STRING, age INT}),
  (cityType: City {id INT, name STRING}),
  (:personType)-[locationType: isLocatedIn {id INT}]->(:cityType),
  (:personType)-[knowsType: knows {id INT}]->(:personType)
}
)";

// Deterministic random social graph.
void FillDb(Database* db, int persons, int cities, int knows_edges,
            unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> person(1, persons);
  std::uniform_int_distribution<int> city(1, cities);
  std::uniform_int_distribution<int> age(18, 80);

  Relation* person_rel = *db->GetRelation("Person");
  for (int i = 1; i <= persons; ++i) {
    person_rel->Insert({Value::Number(i),
                        db->Str("p" + std::to_string(i % 7)),
                        Value::Number(age(rng))});
  }
  Relation* city_rel = *db->GetRelation("City");
  for (int i = 1; i <= cities; ++i) {
    city_rel->Insert(
        {Value::Number(1000 + i), db->Str("c" + std::to_string(i))});
  }
  Relation* located = *db->GetRelation("Person_IS_LOCATED_IN_City");
  int edge_id = 0;
  for (int i = 1; i <= persons; ++i) {
    located->Insert({Value::Number(i), Value::Number(1000 + city(rng)),
                     Value::Number(++edge_id)});
  }
  Relation* knows = *db->GetRelation("Person_KNOWS_Person");
  for (int i = 0; i < knows_edges; ++i) {
    int a = person(rng);
    int b = person(rng);
    if (a == b) continue;
    knows->Insert({Value::Number(a), Value::Number(b),
                   Value::Number(++edge_id)});
  }
}

struct EngineRuns {
  std::set<std::string> graph;
  std::set<std::string> datalog_unopt;
  std::set<std::string> datalog_opt;
  std::set<std::string> sql_vectorized;
  std::set<std::string> sql_pipeline;
};

class CrossEngineTest : public ::testing::TestWithParam<int> {
 protected:
  // Compiles `query` and runs it on every engine/configuration. SQL runs
  // are skipped (left empty, flagged) when the backend rejects the query
  // class; everything else must agree.
  //
  // Determinism invariants asserted inside (exact rows, exact order):
  //  * graph column-batch executor == graph row-binding interpreter
  //  * Datalog at 1 thread == Datalog at 4 threads
  EngineRuns RunEverywhere(const std::string& query, bool* sql_supported) {
    Compiler compiler;
    EXPECT_TRUE(compiler.LoadPgSchema(kSchema).ok());
    Database db;
    EXPECT_TRUE(compiler.CreateEdbs(&db).ok());
    FillDb(&db, 30, 4, 60, static_cast<unsigned>(GetParam()) * 77 + 5);

    CompileOptions options;
    options.opt_level = 0;
    auto unit = compiler.CompileCypher(query, options);
    EXPECT_TRUE(unit.ok()) << unit.status().ToString();

    auto optimized = compiler.Optimize(unit->dlir, 2);
    EXPECT_TRUE(optimized.ok()) << optimized.status().ToString();

    EngineRuns runs;
    // Graph engine: the column-batch executor must be bit-identical —
    // same rows, same order — to the per-binding row interpreter it
    // replaced on the default path.
    auto store = compiler.BuildGraphStore(db);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    auto graph = compiler.RunOnGraph(unit->pgir, *store, &db);
    EXPECT_TRUE(graph.ok()) << graph.status().ToString();
    if (graph.ok()) runs.graph = graph->ToStringSet(db.symbols());
    engine::GraphOptions row_mode;
    row_mode.mode = engine::GraphMode::kRowBinding;
    auto graph_rows =
        compiler.RunOnGraph(unit->pgir, *store, &db, nullptr, row_mode);
    EXPECT_TRUE(graph_rows.ok()) << graph_rows.status().ToString();
    if (graph.ok() && graph_rows.ok()) {
      EXPECT_EQ(graph->columns, graph_rows->columns) << query;
      EXPECT_EQ(graph->rows, graph_rows->rows)
          << "column-batch vs row-binding row order diverged: " << query;
    }

    // Datalog engine, unoptimized and aggressively optimized; the
    // parallel runtime must reproduce the serial rows exactly.
    auto dl1 = compiler.RunOnDatalog(unit->dlir, &db);
    EXPECT_TRUE(dl1.ok()) << dl1.status().ToString() << "\n"
                          << unit->dlir.ToString();
    if (dl1.ok()) runs.datalog_unopt = dl1->ToStringSet(db.symbols());
    engine::EvalOptions four_threads;
    four_threads.num_threads = 4;
    auto dl4 = compiler.RunOnDatalog(unit->dlir, &db, nullptr, four_threads);
    EXPECT_TRUE(dl4.ok()) << dl4.status().ToString();
    if (dl1.ok() && dl4.ok()) {
      EXPECT_EQ(dl1->rows, dl4->rows)
          << "1-thread vs 4-thread row order diverged: " << query;
    }
    auto dl2 = compiler.RunOnDatalog(*optimized, &db);
    EXPECT_TRUE(dl2.ok()) << dl2.status().ToString() << "\n"
                          << optimized->ToString();
    if (dl2.ok()) runs.datalog_opt = dl2->ToStringSet(db.symbols());

    // SQL engine (when expressible).
    auto sqir = compiler.ToSqir(unit->dlir);
    *sql_supported = sqir.ok();
    if (sqir.ok()) {
      auto v = compiler.RunOnSql(unit->dlir, &db, engine::SqlMode::kVectorized);
      EXPECT_TRUE(v.ok()) << v.status().ToString();
      if (v.ok()) runs.sql_vectorized = v->ToStringSet(db.symbols());
      auto p =
          compiler.RunOnSql(unit->dlir, &db, engine::SqlMode::kTuplePipeline);
      EXPECT_TRUE(p.ok()) << p.status().ToString();
      if (p.ok()) runs.sql_pipeline = p->ToStringSet(db.symbols());
    }
    return runs;
  }

  void ExpectAllAgree(const std::string& query) {
    bool sql_supported = false;
    EngineRuns runs = RunEverywhere(query, &sql_supported);
    EXPECT_EQ(runs.graph, runs.datalog_unopt) << query;
    EXPECT_EQ(runs.datalog_unopt, runs.datalog_opt) << query;
    if (sql_supported) {
      EXPECT_EQ(runs.datalog_unopt, runs.sql_vectorized) << query;
      EXPECT_EQ(runs.sql_vectorized, runs.sql_pipeline) << query;
    }
  }
};

TEST_P(CrossEngineTest, PointLookupJoin) {
  ExpectAllAgree(
      "MATCH (n:Person {id: 7})-[:IS_LOCATED_IN]->(c:City) "
      "RETURN DISTINCT n.firstName AS name, c.id AS cityId");
}

TEST_P(CrossEngineTest, OneHopNeighbourhood) {
  ExpectAllAgree(
      "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.id < 5 "
      "RETURN DISTINCT a.id AS a, b.id AS b");
}

TEST_P(CrossEngineTest, TwoHopWithFilter) {
  ExpectAllAgree(
      "MATCH (a:Person {id: 3})-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) "
      "WHERE c.age > 30 RETURN DISTINCT c.id AS id");
}

TEST_P(CrossEngineTest, IncomingEdges) {
  ExpectAllAgree(
      "MATCH (a:Person)<-[:KNOWS]-(b:Person) WHERE a.id = 11 "
      "RETURN DISTINCT b.id AS id");
}

TEST_P(CrossEngineTest, UndirectedEdges) {
  ExpectAllAgree(
      "MATCH (a:Person {id: 4})-[:KNOWS]-(b:Person) "
      "RETURN DISTINCT b.id AS id");
}

TEST_P(CrossEngineTest, DisjunctiveWhere) {
  ExpectAllAgree(
      "MATCH (a:Person)-[:KNOWS]->(b:Person) "
      "WHERE a.id = 2 OR b.id = 9 "
      "RETURN DISTINCT a.id AS a, b.id AS b");
}

TEST_P(CrossEngineTest, BoundedVariableLength) {
  ExpectAllAgree(
      "MATCH (a:Person {id: 1})-[:KNOWS*1..3]->(b:Person) "
      "RETURN DISTINCT b.id AS id");
}

TEST_P(CrossEngineTest, UnboundedReachability) {
  ExpectAllAgree(
      "MATCH (a:Person {id: 2})-[:KNOWS*]->(b:Person) "
      "RETURN DISTINCT b.id AS id");
}

TEST_P(CrossEngineTest, ShortestPathLengths) {
  // Lattice recursion: Datalog + graph only (SQL rejects; checked inside).
  ExpectAllAgree(
      "MATCH p = shortestPath((a:Person {id: 1})-[:KNOWS*]->(b:Person)) "
      "RETURN DISTINCT b.id AS id, length(p) AS len");
}

TEST_P(CrossEngineTest, AggregationCounts) {
  ExpectAllAgree(
      "MATCH (a:Person)-[:KNOWS]->(b:Person) "
      "WITH a, count(b) AS friends "
      "RETURN DISTINCT a.id AS id, friends");
}

// The shapes below exercise the graph engine's batched projection path
// specifically: DISTINCT over high-duplication joins, column-wise
// aggregation, and variable-length expansion feeding batch dedup.

TEST_P(CrossEngineTest, DistinctHeavyTwoHop) {
  // Every two-hop pair appears once per connecting path; DISTINCT has to
  // collapse a much larger intermediate batch.
  ExpectAllAgree(
      "MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) "
      "RETURN DISTINCT a.id AS a, c.id AS c");
}

TEST_P(CrossEngineTest, DistinctProjectionCollapsesColumns) {
  // Projecting only the city collapses the per-person join result to a
  // handful of distinct rows.
  ExpectAllAgree(
      "MATCH (n:Person)-[:IS_LOCATED_IN]->(c:City) "
      "RETURN DISTINCT c.id AS cityId");
}

TEST_P(CrossEngineTest, AllPairsReachability) {
  // The BM_TcGraph shape: unbounded closure unioned per start node, then
  // batch-DISTINCT over the full pair set.
  ExpectAllAgree(
      "MATCH (a:Person)-[:KNOWS*]->(b:Person) "
      "RETURN DISTINCT a.id AS src, b.id AS dst");
}

TEST_P(CrossEngineTest, VariableLengthDistinct) {
  ExpectAllAgree(
      "MATCH (a:Person)-[:KNOWS*1..3]->(b:Person) WHERE a.id < 10 "
      "RETURN DISTINCT a.id AS a, b.id AS b");
}

TEST_P(CrossEngineTest, VariableLengthIntoAggregation) {
  ExpectAllAgree(
      "MATCH (a:Person)-[:KNOWS*1..2]->(b:Person) "
      "WITH a, count(b) AS reach "
      "RETURN DISTINCT a.id AS id, reach");
}

TEST_P(CrossEngineTest, MinAggregation) {
  ExpectAllAgree(
      "MATCH (a:Person)-[:KNOWS]->(b:Person) "
      "WITH a, min(b.age) AS youngest "
      "RETURN DISTINCT a.id AS id, youngest");
}

TEST_P(CrossEngineTest, MaxAggregation) {
  ExpectAllAgree(
      "MATCH (a:Person)-[:KNOWS]->(b:Person) "
      "WITH a, max(b.age) AS oldest "
      "RETURN DISTINCT a.id AS id, oldest");
}

TEST_P(CrossEngineTest, TracingEnabledIsResultNeutral) {
  // The full cross-engine agreement matrix with a trace session
  // installed: span recording must not perturb any engine's results
  // (obs/trace.h's determinism-neutrality contract).
  obs::TraceSession session;
  ExpectAllAgree(
      "MATCH (a:Person {id: 2})-[:KNOWS*]->(b:Person) "
      "RETURN DISTINCT b.id AS id");
  EXPECT_GT(session.event_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, CrossEngineTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace raqlet
