// Cross-paradigm differential tests (DESIGN.md §5): the same Cypher query,
// compiled through Raqlet, must produce identical result sets on the
// graph engine (PGIR traversal), the Datalog engine (semi-naive bottom-up)
// and the SQL engine (CTE materialization, both modes) — and the
// optimization pipeline must not change any of them. This is the
// machine-checkable core of the paper's "golden reference" claim (§6).

#include <gtest/gtest.h>

#include <random>

#include "raqlet/compiler.h"

namespace raqlet {
namespace {

constexpr char kSchema[] = R"(
CREATE GRAPH {
  (personType: Person {id INT, firstName STRING, age INT}),
  (cityType: City {id INT, name STRING}),
  (:personType)-[locationType: isLocatedIn {id INT}]->(:cityType),
  (:personType)-[knowsType: knows {id INT}]->(:personType)
}
)";

// Deterministic random social graph.
void FillDb(Database* db, int persons, int cities, int knows_edges,
            unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> person(1, persons);
  std::uniform_int_distribution<int> city(1, cities);
  std::uniform_int_distribution<int> age(18, 80);

  Relation* person_rel = *db->GetRelation("Person");
  for (int i = 1; i <= persons; ++i) {
    person_rel->Insert({Value::Number(i),
                        db->Str("p" + std::to_string(i % 7)),
                        Value::Number(age(rng))});
  }
  Relation* city_rel = *db->GetRelation("City");
  for (int i = 1; i <= cities; ++i) {
    city_rel->Insert(
        {Value::Number(1000 + i), db->Str("c" + std::to_string(i))});
  }
  Relation* located = *db->GetRelation("Person_IS_LOCATED_IN_City");
  int edge_id = 0;
  for (int i = 1; i <= persons; ++i) {
    located->Insert({Value::Number(i), Value::Number(1000 + city(rng)),
                     Value::Number(++edge_id)});
  }
  Relation* knows = *db->GetRelation("Person_KNOWS_Person");
  for (int i = 0; i < knows_edges; ++i) {
    int a = person(rng);
    int b = person(rng);
    if (a == b) continue;
    knows->Insert({Value::Number(a), Value::Number(b),
                   Value::Number(++edge_id)});
  }
}

struct EngineRuns {
  std::set<std::string> graph;
  std::set<std::string> datalog_unopt;
  std::set<std::string> datalog_opt;
  std::set<std::string> sql_vectorized;
  std::set<std::string> sql_pipeline;
};

class CrossEngineTest : public ::testing::TestWithParam<int> {
 protected:
  // Compiles `query` and runs it on every engine/configuration. SQL runs
  // are skipped (left empty, flagged) when the backend rejects the query
  // class; everything else must agree.
  EngineRuns RunEverywhere(const std::string& query, bool* sql_supported) {
    Compiler compiler;
    EXPECT_TRUE(compiler.LoadPgSchema(kSchema).ok());
    Database db;
    EXPECT_TRUE(compiler.CreateEdbs(&db).ok());
    FillDb(&db, 30, 4, 60, static_cast<unsigned>(GetParam()) * 77 + 5);

    CompileOptions options;
    options.opt_level = 0;
    auto unit = compiler.CompileCypher(query, options);
    EXPECT_TRUE(unit.ok()) << unit.status().ToString();

    auto optimized = compiler.Optimize(unit->dlir, 2);
    EXPECT_TRUE(optimized.ok()) << optimized.status().ToString();

    EngineRuns runs;
    // Graph engine.
    auto store = compiler.BuildGraphStore(db);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    auto graph = compiler.RunOnGraph(unit->pgir, *store, &db);
    EXPECT_TRUE(graph.ok()) << graph.status().ToString();
    if (graph.ok()) runs.graph = graph->ToStringSet(db.symbols());

    // Datalog engine, unoptimized and aggressively optimized.
    auto dl1 = compiler.RunOnDatalog(unit->dlir, &db);
    EXPECT_TRUE(dl1.ok()) << dl1.status().ToString() << "\n"
                          << unit->dlir.ToString();
    if (dl1.ok()) runs.datalog_unopt = dl1->ToStringSet(db.symbols());
    auto dl2 = compiler.RunOnDatalog(*optimized, &db);
    EXPECT_TRUE(dl2.ok()) << dl2.status().ToString() << "\n"
                          << optimized->ToString();
    if (dl2.ok()) runs.datalog_opt = dl2->ToStringSet(db.symbols());

    // SQL engine (when expressible).
    auto sqir = compiler.ToSqir(unit->dlir);
    *sql_supported = sqir.ok();
    if (sqir.ok()) {
      auto v = compiler.RunOnSql(unit->dlir, &db, engine::SqlMode::kVectorized);
      EXPECT_TRUE(v.ok()) << v.status().ToString();
      if (v.ok()) runs.sql_vectorized = v->ToStringSet(db.symbols());
      auto p =
          compiler.RunOnSql(unit->dlir, &db, engine::SqlMode::kTuplePipeline);
      EXPECT_TRUE(p.ok()) << p.status().ToString();
      if (p.ok()) runs.sql_pipeline = p->ToStringSet(db.symbols());
    }
    return runs;
  }

  void ExpectAllAgree(const std::string& query) {
    bool sql_supported = false;
    EngineRuns runs = RunEverywhere(query, &sql_supported);
    EXPECT_EQ(runs.graph, runs.datalog_unopt) << query;
    EXPECT_EQ(runs.datalog_unopt, runs.datalog_opt) << query;
    if (sql_supported) {
      EXPECT_EQ(runs.datalog_unopt, runs.sql_vectorized) << query;
      EXPECT_EQ(runs.sql_vectorized, runs.sql_pipeline) << query;
    }
  }
};

TEST_P(CrossEngineTest, PointLookupJoin) {
  ExpectAllAgree(
      "MATCH (n:Person {id: 7})-[:IS_LOCATED_IN]->(c:City) "
      "RETURN DISTINCT n.firstName AS name, c.id AS cityId");
}

TEST_P(CrossEngineTest, OneHopNeighbourhood) {
  ExpectAllAgree(
      "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.id < 5 "
      "RETURN DISTINCT a.id AS a, b.id AS b");
}

TEST_P(CrossEngineTest, TwoHopWithFilter) {
  ExpectAllAgree(
      "MATCH (a:Person {id: 3})-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) "
      "WHERE c.age > 30 RETURN DISTINCT c.id AS id");
}

TEST_P(CrossEngineTest, IncomingEdges) {
  ExpectAllAgree(
      "MATCH (a:Person)<-[:KNOWS]-(b:Person) WHERE a.id = 11 "
      "RETURN DISTINCT b.id AS id");
}

TEST_P(CrossEngineTest, UndirectedEdges) {
  ExpectAllAgree(
      "MATCH (a:Person {id: 4})-[:KNOWS]-(b:Person) "
      "RETURN DISTINCT b.id AS id");
}

TEST_P(CrossEngineTest, DisjunctiveWhere) {
  ExpectAllAgree(
      "MATCH (a:Person)-[:KNOWS]->(b:Person) "
      "WHERE a.id = 2 OR b.id = 9 "
      "RETURN DISTINCT a.id AS a, b.id AS b");
}

TEST_P(CrossEngineTest, BoundedVariableLength) {
  ExpectAllAgree(
      "MATCH (a:Person {id: 1})-[:KNOWS*1..3]->(b:Person) "
      "RETURN DISTINCT b.id AS id");
}

TEST_P(CrossEngineTest, UnboundedReachability) {
  ExpectAllAgree(
      "MATCH (a:Person {id: 2})-[:KNOWS*]->(b:Person) "
      "RETURN DISTINCT b.id AS id");
}

TEST_P(CrossEngineTest, ShortestPathLengths) {
  // Lattice recursion: Datalog + graph only (SQL rejects; checked inside).
  ExpectAllAgree(
      "MATCH p = shortestPath((a:Person {id: 1})-[:KNOWS*]->(b:Person)) "
      "RETURN DISTINCT b.id AS id, length(p) AS len");
}

TEST_P(CrossEngineTest, AggregationCounts) {
  ExpectAllAgree(
      "MATCH (a:Person)-[:KNOWS]->(b:Person) "
      "WITH a, count(b) AS friends "
      "RETURN DISTINCT a.id AS id, friends");
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, CrossEngineTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace raqlet
