// Tests for Cypher -> PGIR lowering (Fig. 3a -> 3b) and the PGIR -> DLIR
// translation (Fig. 3b -> 3c), including end-to-end execution of the
// paper's running example on the Datalog engine.

#include <gtest/gtest.h>

#include "cypher/parser.h"
#include "engine/datalog/engine.h"
#include "pgir/pgir.h"
#include "pgir/pgir_to_dlir.h"
#include "schema/dl_schema.h"
#include "schema/pg_schema.h"

namespace raqlet::pgir {
namespace {

constexpr char kPaperSchema[] = R"(
CREATE GRAPH {
  (personType: Person {id INT, firstName STRING, locationIP STRING}),
  (cityType: City {id INT, name STRING}),
  (:personType)-[locationType: isLocatedIn {id INT}]->(:cityType),
  (:personType)-[knowsType: knows {id INT}]->(:personType)
}
)";

constexpr char kSq1[] = R"(
MATCH (n:Person {id: 42})-[:IS_LOCATED_IN]->(p:City)
RETURN DISTINCT n.firstName AS firstName, p.id AS cityId
)";

schema::DlSchema PaperDlSchema() {
  auto pg = schema::ParsePgSchema(kPaperSchema);
  EXPECT_TRUE(pg.ok()) << pg.status().ToString();
  return schema::TranslateSchema(*pg);
}

PgirQuery Lower(const std::string& text, LowerOptions options = {}) {
  auto query = cypher::ParseQuery(text);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  auto pgir = LowerCypher(*query, options);
  EXPECT_TRUE(pgir.ok()) << pgir.status().ToString();
  return std::move(pgir).value();
}

TEST(LowerCypherTest, Sq1HasMatchWhereReturn) {
  PgirQuery pgir = Lower(kSq1);
  ASSERT_EQ(pgir.ops.size(), 3u);
  EXPECT_TRUE(std::holds_alternative<MatchOp>(pgir.ops[0]));
  EXPECT_TRUE(std::holds_alternative<WhereOp>(pgir.ops[1]));
  EXPECT_TRUE(std::holds_alternative<ReturnOp>(pgir.ops[2]));

  const auto& match = std::get<MatchOp>(pgir.ops[0]);
  ASSERT_EQ(match.edges.size(), 1u);
  // Anonymous edge gets the compiler id x1 (paper Fig. 3b).
  EXPECT_EQ(match.edges[0].id, "x1");
  EXPECT_EQ(match.edges[0].label, "IS_LOCATED_IN");
  EXPECT_EQ(match.edges[0].src.id, "n");
  EXPECT_EQ(match.edges[0].dst.id, "p");

  // {id: 42} was extracted into WHERE as n.id = 42.
  const auto& where = std::get<WhereOp>(pgir.ops[1]);
  EXPECT_EQ(where.predicate.ToString(), "(n.id = 42)");
}

TEST(LowerCypherTest, OrderByDroppedWithWarning) {
  PgirQuery pgir = Lower(
      "MATCH (n:Person) RETURN DISTINCT n.firstName AS f ORDER BY f LIMIT 3");
  bool warned_order = false;
  bool warned_limit = false;
  for (const std::string& w : pgir.warnings) {
    if (w.find("ORDER BY") != std::string::npos) warned_order = true;
    if (w.find("LIMIT") != std::string::npos) warned_limit = true;
  }
  EXPECT_TRUE(warned_order);
  EXPECT_TRUE(warned_limit);
}

TEST(LowerCypherTest, BagSemanticsWarning) {
  PgirQuery pgir = Lower("MATCH (n:Person) RETURN n.firstName AS f");
  bool warned = false;
  for (const std::string& w : pgir.warnings) {
    if (w.find("set semantics") != std::string::npos) warned = true;
  }
  EXPECT_TRUE(warned);
}

TEST(LowerCypherTest, ParameterSubstitution) {
  LowerOptions options;
  options.parameters["personId"] = dlir::Constant::Number(7);
  PgirQuery pgir =
      Lower("MATCH (n:Person {id: $personId}) RETURN DISTINCT n.firstName AS f",
            options);
  const auto& where = std::get<WhereOp>(pgir.ops[1]);
  EXPECT_EQ(where.predicate.ToString(), "(n.id = 7)");
}

TEST(LowerCypherTest, MissingParameterFails) {
  auto query = cypher::ParseQuery("MATCH (n:Person {id: $missing}) RETURN n");
  ASSERT_TRUE(query.ok());
  auto pgir = LowerCypher(*query);
  ASSERT_FALSE(pgir.ok());
  EXPECT_NE(pgir.status().message().find("$missing"), std::string::npos);
}

TEST(LowerCypherTest, AliasesAreUnique) {
  PgirQuery pgir = Lower(
      "MATCH (a:Person)-[:KNOWS]->(b:Person) "
      "RETURN DISTINCT a.firstName, b.firstName");
  const auto& ret = std::get<ReturnOp>(pgir.ops.back());
  ASSERT_EQ(ret.items.size(), 2u);
  EXPECT_EQ(ret.items[0].alias, "firstName");
  EXPECT_EQ(ret.items[1].alias, "firstName_2");
}

// ---------------------------------------------------------------------------
// PGIR -> DLIR
// ---------------------------------------------------------------------------

dlir::Program Translate(const std::string& text,
                        const schema::DlSchema& dl) {
  PgirQuery pgir = Lower(text);
  auto program = TranslateToDlir(pgir, dl);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

TEST(TranslateTest, Sq1ProducesPaperRuleChain) {
  schema::DlSchema dl = PaperDlSchema();
  dlir::Program program = Translate(kSq1, dl);

  // Match1, Where1, Return (Fig. 3c).
  std::vector<std::string> heads;
  for (const dlir::Rule& rule : program.rules) {
    heads.push_back(rule.head.predicate);
  }
  EXPECT_EQ(heads,
            (std::vector<std::string>{"Match1", "Where1", "Return"}));

  // Match1 body: edge EDB with (n, p, x1) plus Person and City atoms.
  const dlir::Rule& match = program.rules[0];
  ASSERT_EQ(match.body.size(), 3u);
  const dlir::Atom* edge_atom = nullptr;
  bool has_person = false;
  bool has_city = false;
  for (const dlir::Atom& atom : match.body) {
    if (atom.predicate == "Person_IS_LOCATED_IN_City") edge_atom = &atom;
    if (atom.predicate == "Person") has_person = true;
    if (atom.predicate == "City") has_city = true;
  }
  EXPECT_TRUE(has_person);
  EXPECT_TRUE(has_city);
  ASSERT_NE(edge_atom, nullptr);
  EXPECT_EQ(edge_atom->args[0].var, "n");
  EXPECT_EQ(edge_atom->args[1].var, "p");
  EXPECT_EQ(edge_atom->args[2].var, "x1");

  // Where1: n = 42 constraint.
  const dlir::Rule& where = program.rules[1];
  ASSERT_EQ(where.constraints.size(), 1u);
  EXPECT_EQ(where.constraints[0].ToString(), "n = 42");

  // Return: output decl with the right column names.
  const dlir::RelationDecl* ret = program.FindDecl("Return");
  ASSERT_NE(ret, nullptr);
  EXPECT_TRUE(ret->is_output);
  ASSERT_EQ(ret->columns.size(), 2u);
  EXPECT_EQ(ret->columns[0].name, "firstName");
  EXPECT_EQ(ret->columns[0].type, ValueType::kSymbol);
  EXPECT_EQ(ret->columns[1].name, "cityId");

  EXPECT_TRUE(program.Validate().ok()) << program.Validate().ToString();
}

Database PaperDb(const schema::DlSchema& dl) {
  Database db;
  EXPECT_TRUE(schema::CreateEdbRelations(dl, &db).ok());
  Relation* person = *db.GetRelation("Person");
  person->Insert({Value::Number(42), db.Str("Ada"), db.Str("10.0.0.1")});
  person->Insert({Value::Number(7), db.Str("Bob"), db.Str("10.0.0.2")});
  person->Insert({Value::Number(8), db.Str("Eve"), db.Str("10.0.0.3")});
  Relation* city = *db.GetRelation("City");
  city->Insert({Value::Number(100), db.Str("Edinburgh")});
  city->Insert({Value::Number(200), db.Str("Lausanne")});
  Relation* located = *db.GetRelation("Person_IS_LOCATED_IN_City");
  located->Insert({Value::Number(42), Value::Number(100), Value::Number(1)});
  located->Insert({Value::Number(7), Value::Number(200), Value::Number(2)});
  Relation* knows = *db.GetRelation("Person_KNOWS_Person");
  knows->Insert({Value::Number(42), Value::Number(7), Value::Number(10)});
  knows->Insert({Value::Number(7), Value::Number(8), Value::Number(11)});
  return db;
}

std::set<std::string> Results(const Database& db,
                              const std::string& rel = "Return") {
  std::set<std::string> out;
  for (const Tuple& row : (*db.GetRelation(rel))->rows()) {
    out.insert(TupleToString(row, &db.symbols()));
  }
  return out;
}

TEST(TranslateTest, Sq1ExecutesEndToEnd) {
  schema::DlSchema dl = PaperDlSchema();
  dlir::Program program = Translate(kSq1, dl);
  Database db = PaperDb(dl);
  engine::DatalogEngine eng;
  Status st = eng.Run(program, &db);
  ASSERT_TRUE(st.ok()) << st.ToString() << "\n" << program.ToString();
  EXPECT_EQ(Results(db), (std::set<std::string>{"(\"Ada\", 100)"}));
}

TEST(TranslateTest, IncomingEdgeSwapsEndpoints) {
  schema::DlSchema dl = PaperDlSchema();
  dlir::Program program = Translate(
      "MATCH (c:City)<-[:IS_LOCATED_IN]-(n:Person) "
      "RETURN DISTINCT c.name AS city", dl);
  Database db = PaperDb(dl);
  engine::DatalogEngine eng;
  ASSERT_TRUE(eng.Run(program, &db).ok());
  EXPECT_EQ(Results(db),
            (std::set<std::string>{"(\"Edinburgh\")", "(\"Lausanne\")"}));
}

TEST(TranslateTest, UndirectedEdgeMatchesBothWays) {
  schema::DlSchema dl = PaperDlSchema();
  dlir::Program program = Translate(
      "MATCH (a:Person {id: 7})-[:KNOWS]-(b:Person) "
      "RETURN DISTINCT b.firstName AS name", dl);
  Database db = PaperDb(dl);
  engine::DatalogEngine eng;
  Status st = eng.Run(program, &db);
  ASSERT_TRUE(st.ok()) << st.ToString() << "\n" << program.ToString();
  // 7 knows 8 (outgoing) and 42 knows 7 (incoming): both match.
  EXPECT_EQ(Results(db),
            (std::set<std::string>{"(\"Ada\")", "(\"Eve\")"}));
}

TEST(TranslateTest, VariableLengthPath) {
  schema::DlSchema dl = PaperDlSchema();
  dlir::Program program = Translate(
      "MATCH (a:Person {id: 42})-[:KNOWS*1..2]->(b:Person) "
      "RETURN DISTINCT b.firstName AS name", dl);
  Database db = PaperDb(dl);
  engine::DatalogEngine eng;
  Status st = eng.Run(program, &db);
  ASSERT_TRUE(st.ok()) << st.ToString() << "\n" << program.ToString();
  EXPECT_EQ(Results(db),
            (std::set<std::string>{"(\"Bob\")", "(\"Eve\")"}));
}

TEST(TranslateTest, UnboundedVariableLengthIsReachability) {
  schema::DlSchema dl = PaperDlSchema();
  dlir::Program program = Translate(
      "MATCH (a:Person {id: 42})-[:KNOWS*]->(b:Person) "
      "RETURN DISTINCT b.id AS id", dl);
  Database db = PaperDb(dl);
  engine::DatalogEngine eng;
  ASSERT_TRUE(eng.Run(program, &db).ok());
  EXPECT_EQ(Results(db), (std::set<std::string>{"(7)", "(8)"}));
}

TEST(TranslateTest, ShortestPathUsesLattice) {
  schema::DlSchema dl = PaperDlSchema();
  dlir::Program program = Translate(
      "MATCH p = shortestPath((a:Person {id: 42})-[:KNOWS*]->(b:Person "
      "{id: 8})) RETURN DISTINCT length(p) AS len", dl);
  bool has_lattice = false;
  for (const dlir::RelationDecl& decl : program.decls) {
    if (decl.lattice == dlir::LatticeKind::kMin) has_lattice = true;
  }
  EXPECT_TRUE(has_lattice);
  Database db = PaperDb(dl);
  engine::DatalogEngine eng;
  Status st = eng.Run(program, &db);
  ASSERT_TRUE(st.ok()) << st.ToString() << "\n" << program.ToString();
  EXPECT_EQ(Results(db), (std::set<std::string>{"(2)"}));
}

TEST(TranslateTest, WhereWithOrSplitsIntoTwoRules) {
  schema::DlSchema dl = PaperDlSchema();
  dlir::Program program = Translate(
      "MATCH (n:Person) WHERE n.id = 7 OR n.firstName = \"Ada\" "
      "RETURN DISTINCT n.id AS id", dl);
  int where_rules = 0;
  for (const dlir::Rule& rule : program.rules) {
    if (rule.head.predicate == "Where1") ++where_rules;
  }
  EXPECT_EQ(where_rules, 2);
  Database db = PaperDb(dl);
  engine::DatalogEngine eng;
  ASSERT_TRUE(eng.Run(program, &db).ok());
  EXPECT_EQ(Results(db), (std::set<std::string>{"(7)", "(42)"}));
}

TEST(TranslateTest, NotPushesThroughDeMorgan) {
  schema::DlSchema dl = PaperDlSchema();
  dlir::Program program = Translate(
      "MATCH (n:Person) WHERE NOT (n.id = 7 OR n.id = 8) "
      "RETURN DISTINCT n.id AS id", dl);
  Database db = PaperDb(dl);
  engine::DatalogEngine eng;
  ASSERT_TRUE(eng.Run(program, &db).ok());
  EXPECT_EQ(Results(db), (std::set<std::string>{"(42)"}));
}

TEST(TranslateTest, WithAggregationCountsFriends) {
  schema::DlSchema dl = PaperDlSchema();
  dlir::Program program = Translate(
      "MATCH (n:Person)-[:KNOWS]->(m:Person) "
      "WITH n, count(m) AS friends "
      "RETURN DISTINCT n, friends", dl);
  Database db = PaperDb(dl);
  engine::DatalogEngine eng;
  Status st = eng.Run(program, &db);
  ASSERT_TRUE(st.ok()) << st.ToString() << "\n" << program.ToString();
  EXPECT_EQ(Results(db), (std::set<std::string>{"(42, 1)", "(7, 1)"}));
}

TEST(TranslateTest, UnknownLabelFails) {
  schema::DlSchema dl = PaperDlSchema();
  PgirQuery pgir = Lower("MATCH (n:Ghost) RETURN DISTINCT n.id AS id");
  auto program = TranslateToDlir(pgir, dl);
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), StatusCode::kNotFound);
}

TEST(TranslateTest, UnknownEdgeTypeFails) {
  schema::DlSchema dl = PaperDlSchema();
  PgirQuery pgir =
      Lower("MATCH (n:Person)-[:GHOST]->(m:Person) RETURN DISTINCT n");
  EXPECT_FALSE(TranslateToDlir(pgir, dl).ok());
}

TEST(TranslateTest, UnlabeledNewNodeFails) {
  schema::DlSchema dl = PaperDlSchema();
  PgirQuery pgir = Lower("MATCH (n) RETURN DISTINCT n");
  auto program = TranslateToDlir(pgir, dl);
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), StatusCode::kUnsupported);
}

TEST(TranslateTest, MultiClauseMatchChains) {
  schema::DlSchema dl = PaperDlSchema();
  dlir::Program program = Translate(
      "MATCH (a:Person {id: 42})-[:KNOWS]->(b:Person) "
      "MATCH (b)-[:KNOWS]->(c:Person) "
      "RETURN DISTINCT c.firstName AS name", dl);
  // Two Match rules, chained through the frontier.
  EXPECT_NE(program.FindDecl("Match1"), nullptr);
  EXPECT_NE(program.FindDecl("Match2"), nullptr);
  Database db = PaperDb(dl);
  engine::DatalogEngine eng;
  ASSERT_TRUE(eng.Run(program, &db).ok());
  EXPECT_EQ(Results(db), (std::set<std::string>{"(\"Eve\")"}));
}

}  // namespace
}  // namespace raqlet::pgir
