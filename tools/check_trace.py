#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by `raqlet_cli --trace`.

Structural checks (all must hold):
  * the file parses as JSON and has a non-empty "traceEvents" array;
  * every event is a complete ("X") span with the required keys
    (name, cat, ph, ts, dur, pid, tid) and sane values: non-empty name,
    ts >= 0, dur >= 0, integer pid/tid;
  * events are well-ordered: sorting by ts is monotone (the exporter
    emits them sorted, so a violation means a writer raced the export).

Optionally, --require NAME (repeatable) asserts that at least one span
with that exact name (or "NAME <index>" for indexed spans) is present —
CI uses this to prove the pipeline-phase and engine spans actually fire.

Usage:
  check_trace.py TRACE.json [--require compile.parse --require datalog.run]
"""

import argparse
import json
import sys

REQUIRED_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="span name that must appear at least once")
    args = parser.parse_args()

    try:
        with open(args.trace) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot load {args.trace}: {e}")
        return 1

    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        print("error: missing or empty 'traceEvents' array")
        return 1

    last_ts = None
    for i, event in enumerate(events):
        missing = [k for k in REQUIRED_KEYS if k not in event]
        if missing:
            print(f"error: event {i} missing keys: {', '.join(missing)}")
            return 1
        if event["ph"] != "X":
            print(f"error: event {i} has phase {event['ph']!r}, expected "
                  "complete spans ('X')")
            return 1
        if not isinstance(event["name"], str) or not event["name"]:
            print(f"error: event {i} has an empty name")
            return 1
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            print(f"error: event {i} has invalid ts {event['ts']!r}")
            return 1
        if not isinstance(event["dur"], (int, float)) or event["dur"] < 0:
            print(f"error: event {i} has invalid dur {event['dur']!r}")
            return 1
        if not isinstance(event["pid"], int) or not isinstance(
                event["tid"], int):
            print(f"error: event {i} has non-integer pid/tid")
            return 1
        if last_ts is not None and event["ts"] < last_ts:
            print(f"error: event {i} starts at ts={event['ts']} before "
                  f"its predecessor (ts={last_ts}); export is not sorted")
            return 1
        last_ts = event["ts"]

    names = {e["name"] for e in events}
    prefixes = {n.rsplit(" ", 1)[0] for n in names}
    missing = [r for r in args.require
               if r not in names and r not in prefixes]
    if missing:
        print(f"error: required span(s) absent: {', '.join(missing)}")
        print(f"       present: {', '.join(sorted(names))}")
        return 1

    print(f"OK: {len(events)} complete span(s), "
          f"{len(names)} distinct name(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
