#!/usr/bin/env python3
"""Flags Program::FindDecl() pointers held across container mutation.

Program::FindDecl() returns a pointer into Program::decls; push_back on
decls (or rules, whose rewrites often reallocate decls alongside) can
reallocate the vector and leave the pointer dangling. PR 1's magic-sets
pass shipped exactly this bug: it captured a decl pointer, appended magic
decls, then read the stale pointer. ASan catches it only when the vector
actually reallocates, which small test programs rarely force — so this
checker flags the *pattern*, not the crash.

The heuristic, per function body (brace-matched, namespaces/classes are
transparent):

  1. a pointer capture of a FindDecl result:  `x = <obj>.FindDecl(...)`
     (value copies `x = *<obj>.FindDecl(...)` are fine and ignored);
  2. followed by a mutation of `<obj>.decls` or `<obj>.rules`
     (push_back/emplace_back/insert/erase/clear/resize/pop_back/assign
     or whole-container assignment);
  3. followed by any later use of `x`.

All three in order within one function is a finding. Re-looking up after
the mutation, or copying the decl by value, silences it.

Usage:
  tools/check_decl_invalidation.py [path ...]   # default: src
  tools/check_decl_invalidation.py --self-test
"""

import argparse
import re
import sys
from pathlib import Path

CAPTURE_RE = re.compile(
    r"""(?:^|[\s(])                 # start of statement-ish context
        (?:const\s+)?(?:\w+::)*\w+\s*\*\s*(?P<var>\w+)\s*=\s*  # T* var =
        (?P<obj>\w+)(?:\.|->)FindDecl\s*\(
      | (?:^|[\s(])auto\s*\*?\s*(?P<avar>\w+)\s*=\s*
        (?P<aobj>\w+)(?:\.|->)FindDecl\s*\(
    """,
    re.VERBOSE,
)
# `x = *p.FindDecl(...)` dereferences immediately into a value copy.
VALUE_COPY_RE = re.compile(r"=\s*\*\s*\w+(?:\.|->)FindDecl\s*\(")

MUTATORS = (
    "push_back|emplace_back|insert|erase|clear|resize|pop_back|assign"
)
MUTATION_RE = re.compile(
    r"(?P<obj>\w+)(?:\.|->)(?:decls|rules)\s*"
    rf"(?:(?:\.|->)(?:{MUTATORS})\s*\(|=[^=])"
)

SCOPE_OPENER_RE = re.compile(r"^\s*(namespace|class|struct|enum|union)\b")


def strip_noise(line):
    """Removes line comments and string literals (crudely, good enough)."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"//.*", "", line)
    return line


def check_lines(lines, filename):
    """Returns findings as (line_number, message) tuples."""
    findings = []
    # Stack entry per open brace: True when the brace belongs to a
    # transparent scope (namespace/class/...) rather than a function body.
    brace_stack = []
    # Live captures: var -> (obj, capture_line, depth, mutated_at).
    captures = {}
    in_block_comment = False

    for lineno, raw in enumerate(lines, start=1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + line[end + 2:]
        line = strip_noise(line)

        transparent = bool(SCOPE_OPENER_RE.match(line))

        for match in CAPTURE_RE.finditer(line):
            if VALUE_COPY_RE.search(line):
                continue
            var = match.group("var") or match.group("avar")
            obj = match.group("obj") or match.group("aobj")
            captures[var] = {
                "obj": obj,
                "line": lineno,
                "depth": len(brace_stack),
                "mutated_at": None,
            }

        for match in MUTATION_RE.finditer(line):
            obj = match.group("obj")
            for var, info in captures.items():
                if info["obj"] == obj and info["mutated_at"] is None:
                    # The capturing statement itself (e.g. decls.push_back
                    # on another object) cannot invalidate retroactively.
                    if info["line"] != lineno:
                        info["mutated_at"] = lineno

        for var, info in list(captures.items()):
            if info["mutated_at"] is None or info["mutated_at"] == lineno:
                continue
            if re.search(rf"\b{re.escape(var)}\b", line):
                findings.append((
                    lineno,
                    f"'{var}' holds a FindDecl() pointer into "
                    f"'{info['obj']}' (line {info['line']}) that line "
                    f"{info['mutated_at']} may have invalidated "
                    f"(decls/rules mutation); copy the decl by value or "
                    f"re-look it up after mutating",
                ))
                del captures[var]

        # Brace tracking last: captures die with their function scope.
        for ch in line:
            if ch == "{":
                brace_stack.append(transparent)
                transparent = False
            elif ch == "}":
                if brace_stack:
                    brace_stack.pop()
                depth = len(brace_stack)
                captures = {
                    v: i for v, i in captures.items() if i["depth"] <= depth
                }

    return [(filename, n, msg) for n, msg in findings]


def check_file(path):
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        print(f"warning: cannot read {path}: {err}", file=sys.stderr)
        return []
    return check_lines(text.splitlines(), str(path))


BAD_FIXTURE = """\
void Bad(Program& program) {
  const RelationDecl* decl = program.FindDecl("edge");
  program.decls.push_back(MagicDecl());
  Use(decl->name);
}
"""

GOOD_FIXTURES = """\
void GoodValueCopy(Program& program) {
  RelationDecl decl = *program.FindDecl("edge");
  program.decls.push_back(MagicDecl());
  Use(decl.name);
}

void GoodRelookup(Program& program) {
  program.decls.push_back(MagicDecl());
  const RelationDecl* decl = program.FindDecl("edge");
  Use(decl->name);
}

void GoodUseBeforeMutation(Program& program) {
  const RelationDecl* decl = program.FindDecl("edge");
  Use(decl->name);
  program.decls.push_back(MagicDecl());
}

void GoodOtherObject(Program& program, Program& other) {
  const RelationDecl* decl = program.FindDecl("edge");
  other.decls.push_back(MagicDecl());
  Use(decl->name);
}

void GoodScopeReset(Program& program) {
  {
    const RelationDecl* decl = program.FindDecl("edge");
    Use(decl->name);
  }
  program.decls.push_back(MagicDecl());
}

void UnrelatedDecl(Program& program) {
  const RelationDecl* decl = program.FindDecl("edge");
  // A comment mentioning program.decls.push_back( must not count.
  Use(decl->name);
}
"""


def self_test():
    bad = check_lines(BAD_FIXTURE.splitlines(), "<bad-fixture>")
    good = check_lines(GOOD_FIXTURES.splitlines(), "<good-fixtures>")
    ok = True
    if len(bad) != 1:
        print(f"self-test FAILED: bad fixture produced {len(bad)} "
              f"finding(s), expected 1: {bad}", file=sys.stderr)
        ok = False
    if good:
        print(f"self-test FAILED: good fixtures produced findings: {good}",
              file=sys.stderr)
        ok = False
    if ok:
        print("self-test passed: 1 finding on the bad fixture, "
              "0 on the good fixtures")
    return 0 if ok else 1


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to scan (default: src)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in fixtures and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    files = []
    for p in args.paths or ["src"]:
        path = Path(p)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.cc")))
            files.extend(sorted(path.rglob("*.h")))
            files.extend(sorted(path.rglob("*.cpp")))
        else:
            files.append(path)

    findings = []
    for f in files:
        findings.extend(check_file(f))

    for filename, lineno, msg in findings:
        print(f"{filename}:{lineno}: {msg}")
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} file(s): no FindDecl pointers held "
          f"across decls/rules mutation")
    return 0


if __name__ == "__main__":
    sys.exit(main())
