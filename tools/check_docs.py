#!/usr/bin/env python3
"""Link-check the user docs so build commands and pointer maps can't rot.

Two checks over README.md and docs/*.md (or any files passed on the
command line):

1. Every relative markdown link [text](path) must resolve to an existing
   file or directory (resolved against the containing file's directory;
   http(s)/mailto links and pure #anchors are skipped, a #fragment on a
   file link is stripped).
2. Every `backtick` span that looks like a repo path — starts with a
   known top-level directory (src/, tests/, bench/, tools/, examples/,
   docs/, .github/) or names a root file like CMakeLists.txt /
   BENCH_pr10.json — must exist from the repo root. This is what catches
   prose like "see src/engine/graph/executor.cc" going stale after a
   rename.

Exit code 0 when everything resolves, 1 with a per-finding report
otherwise. CI runs this in the docs job.
"""

import glob
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_RE = re.compile(r"`([^`\n]+)`")

# A backtick span is treated as a repo path when it matches one of these.
PATH_PREFIXES = ("src/", "tests/", "bench/", "tools/", "examples/",
                 "docs/", ".github/")
ROOT_FILE_RE = re.compile(
    r"^[A-Za-z0-9_.-]+\.(md|json|txt|py|yml|yaml)$")


def check_file(md_path):
    failures = []
    base_dir = os.path.dirname(os.path.abspath(md_path))
    with open(md_path, encoding="utf-8") as f:
        lines = f.readlines()

    in_fence = False
    for lineno, line in enumerate(lines, start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = os.path.normpath(os.path.join(base_dir, target))
            if not os.path.exists(resolved):
                failures.append(
                    f"{md_path}:{lineno}: dead link target '{target}'")
        if in_fence:
            # Fenced code blocks hold commands with output redirections and
            # placeholder paths; only inline code is path-checked.
            continue
        for match in CODE_RE.finditer(line):
            token = match.group(1).strip()
            looks_like_path = token.startswith(PATH_PREFIXES) or \
                ROOT_FILE_RE.match(token)
            if not looks_like_path:
                continue
            # Commands/globs/placeholders, not concrete paths.
            if any(ch in token for ch in " <>*$|'\"{}"):
                continue
            resolved = os.path.normpath(os.path.join(REPO_ROOT, token))
            if not os.path.exists(resolved):
                failures.append(
                    f"{md_path}:{lineno}: dead path reference `{token}`")
    return failures


def main():
    files = sys.argv[1:]
    if not files:
        files = [os.path.join(REPO_ROOT, "README.md")]
        files += sorted(glob.glob(os.path.join(REPO_ROOT, "docs", "*.md")))
    failures = []
    for path in files:
        if not os.path.exists(path):
            failures.append(f"{path}: file not found")
            continue
        failures.extend(check_file(path))
    if failures:
        for failure in failures:
            print(failure)
        print(f"FAIL: {len(failures)} dead reference(s)")
        return 1
    print(f"OK: {len(files)} file(s) link-checked")
    return 0


if __name__ == "__main__":
    sys.exit(main())
