#!/usr/bin/env python3
"""Guard against perf regressions on the semi-naive hot path.

Compares a fresh Google-Benchmark JSON run against the committed baseline
(BENCH_pr10.json) and fails if any benchmark matching the filter regressed
by more than the tolerance. Benchmarks present in only one file are
reported but never fail the check (sizes and cases may evolve).

The default filter gates every engine hot path: the semi-naive Datalog
closure (BM_TcDatalog), the SQL engine's column-batched recursive CTE
(BM_TcSql, which also matches the BM_TcSqlTuple pipeline mode), and the
graph engine's column-batch executor (BM_TcGraph; the deliberately
unbatched BM_TcGraphRows reference is not gated). The incremental suite
gates delta maintenance (BM_IncrementalDelta, BM_IncrementalMixedChurn,
BM_IncrementalKnowsDelta) with the looser multi-thread tolerance.

Usage:
  bench_check.py CURRENT.json BASELINE.json [--suite bench_tc]
                 [--filter 'BM_TcDatalog|BM_TcSql|BM_TcGraph/']
                 [--max-regress 0.25] [--reruns N]

CURRENT.json is a raw `--benchmark_format=json` dump. BASELINE.json is
either a raw dump or the committed multi-suite file {"bench_tc": {...},
"bench_parallel": {...}} — pick the suite with --suite.

With --reruns N (N > 1), CURRENT must be a template containing '{i}'
(e.g. 'bench_tc_current.{i}.json'); the script loads the N dumps and
takes, per case, the best (lowest) of the per-rerun medians. A genuine
regression is slow in every rerun, so best-median keeps the gate tight
while ignoring a single rerun that lost the machine to a noisy
neighbour. Every comparison line also prints its margin — how much
headroom remains before the case would trip the gate — so near-misses
are visible before they become failures.

The tolerance can be overridden with RAQLET_BENCH_TOLERANCE (a float,
e.g. 0.4) to loosen the gate on noisy shared runners without editing CI.
"""

import argparse
import json
import os
import re
import statistics
import sys


def load_benchmarks(path, suite):
    """Returns {name: median real_time}; with --benchmark_repetitions the
    iteration entries share a name and are median-folded here, which keeps
    one noisy repetition from failing (or masking) a regression."""
    with open(path) as f:
        data = json.load(f)
    if "benchmarks" not in data and suite in data:
        data = data[suite]
    times = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        times.setdefault(bench["name"], []).append(float(bench["real_time"]))
    return {name: statistics.median(ts) for name, ts in times.items()}


def load_current(path, suite, reruns):
    """Loads the current run; with reruns > 1 `path` is a '{i}' template
    and each case gets the best (minimum) median across the reruns."""
    if reruns <= 1:
        return load_benchmarks(path, suite)
    if "{i}" not in path:
        raise SystemExit(
            f"error: --reruns {reruns} needs a CURRENT template "
            f"containing '{{i}}', got '{path}'")
    merged = {}
    for i in range(1, reruns + 1):
        for name, t in load_benchmarks(path.format(i=i), suite).items():
            merged[name] = min(merged.get(name, t), t)
    return merged


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--suite", default="bench_tc")
    parser.add_argument("--filter",
                        default="BM_TcDatalog|BM_TcSql|BM_TcGraph/")
    parser.add_argument("--max-regress", type=float, default=0.25)
    parser.add_argument("--reruns", type=int, default=1,
                        help="number of current-run dumps; CURRENT must "
                             "contain '{i}' (1-based) when > 1")
    args = parser.parse_args()

    tolerance = args.max_regress
    env_tolerance = os.environ.get("RAQLET_BENCH_TOLERANCE")
    if env_tolerance:
        tolerance = float(env_tolerance)

    current = load_current(args.current, args.suite, args.reruns)
    baseline = load_benchmarks(args.baseline, args.suite)
    pattern = re.compile(args.filter)

    failures = []
    compared = 0
    for name, base_time in sorted(baseline.items()):
        if not pattern.search(name):
            continue
        if name not in current:
            print(f"note: {name} missing from current run, skipping")
            continue
        compared += 1
        ratio = current[name] / base_time
        # Headroom before this case would trip the gate (negative = over).
        margin = (1.0 + tolerance) - ratio
        status = "ok"
        if ratio > 1.0 + tolerance:
            status = "REGRESSED"
            failures.append(name)
        print(f"{name}: baseline {base_time:.3f} -> current "
              f"{current[name]:.3f} ({ratio:.2f}x, margin {margin:+.0%}) "
              f"{status}")

    if compared == 0:
        print(f"error: no benchmarks matched filter '{args.filter}'")
        return 1
    if failures:
        print(f"FAIL: {len(failures)} benchmark(s) regressed more than "
              f"{tolerance:.0%}: {', '.join(failures)}")
        return 1
    print(f"OK: {compared} benchmark(s) within {tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
