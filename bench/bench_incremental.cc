// Incremental view maintenance vs from-scratch re-evaluation.
//
// Three cases, all maintaining a recursive reachability view:
//
//  * BM_IncrementalDelta — the headline streaming-append shape: a 1%-of-
//    base insert-only delta on TC over a deterministic random graph
//    (out-degree ~2). Insert-only deltas take the semi-naive continuation
//    straight from the new facts, so maintenance cost scales with the
//    delta's derivational impact, not the view size; `speedup_vs_full`
//    (full re-evaluation wall time over per-delta maintenance wall time)
//    is expected well above 5x at nodes:1000. Manual timing: each
//    iteration re-initializes the view untimed, then times one ApplyDelta.
//  * BM_IncrementalMixedChurn — the adversarial shape: half removals of
//    existing edges, half fresh insertions, applied and then exactly
//    inverted each iteration. Removing edges inside a strongly connected
//    component cascades the overdeletion through most of the closure, so
//    the DRed bail-out hands the SCC to recompute-and-diff
//    (IncrementalOptions::dred_recompute_threshold) — this case tracks
//    the cost of that deletion path, not a speedup claim.
//  * BM_IncrementalKnowsDelta — the headline shape on the LDBC-like SNB
//    generator's Person_KNOWS_Person graph (heavy-tailed degrees) instead
//    of the synthetic uniform graph.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <utility>
#include <vector>

#include "dlir/parser.h"
#include "engine/datalog/engine.h"
#include "engine/datalog/incremental.h"
#include "ldbc/ldbc.h"
#include "raqlet/compiler.h"
#include "storage/database.h"

namespace {

constexpr char kTcDatalog[] = R"(
.decl edge(x: number, y: number)
.input edge
.decl tc(x: number, y: number)
.output tc
tc(x, y) :- edge(x, y).
tc(x, z) :- tc(x, y), edge(y, z).
)";

constexpr char kKnowsDatalog[] = R"(
.decl Person_KNOWS_Person(id1: number, id2: number, id: number, creationDate: number)
.input Person_KNOWS_Person
.decl reach(x: number, y: number)
.output reach
reach(x, y) :- Person_KNOWS_Person(x, y, _, _).
reach(x, z) :- reach(x, y), Person_KNOWS_Person(y, z, _, _).
)";

using Edge = std::pair<int64_t, int64_t>;

raqlet::Tuple ToTuple(const Edge& e) {
  return {raqlet::Value::Number(e.first), raqlet::Value::Number(e.second)};
}

double MedianOfThreeFullEvalsMs(const raqlet::dlir::Program& program,
                                raqlet::Database* db) {
  raqlet::engine::DatalogEngine eng;
  std::vector<double> runs;
  for (int i = 0; i < 3; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    if (!eng.Run(program, db).ok()) std::abort();
    auto t1 = std::chrono::steady_clock::now();
    runs.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(runs.begin(), runs.end());
  return runs[1];
}

struct Instance {
  raqlet::dlir::Program program;
  std::vector<Edge> base;            // the steady-state edge set
  raqlet::DeltaBatch inserts;        // 1% fresh edges, adds only
  raqlet::DeltaBatch inserts_undo;   // base-level removal of `inserts`
  raqlet::DeltaBatch churn;          // mixed: +fresh / −victim base edges
  raqlet::DeltaBatch churn_inverse;  // exact undo of `churn`
  raqlet::Database db;
  double full_eval_ms = 0;  // median from-scratch wall time
};

void AddEdgeRelation(raqlet::Database* db) {
  raqlet::RelationSchema schema;
  schema.name = "edge";
  schema.columns = {{"x", raqlet::ValueType::kNumber},
                    {"y", raqlet::ValueType::kNumber}};
  if (!db->CreateRelation(std::move(schema)).ok()) std::abort();
}

Instance& GetInstance(int nodes) {
  static std::map<int, Instance*>& cache = *new std::map<int, Instance*>();
  auto it = cache.find(nodes);
  if (it != cache.end()) return *it->second;

  auto* inst = new Instance();
  auto program = raqlet::dlir::ParseProgram(kTcDatalog);
  if (!program.ok()) std::abort();
  inst->program = std::move(program).value();

  std::mt19937 rng(1234);
  std::uniform_int_distribution<int64_t> pick(1, nodes);
  std::set<Edge> seen;
  for (int i = 1; i <= nodes; ++i) {
    for (int k = 0; k < 2; ++k) {  // out-degree 2
      Edge e{i, pick(rng)};
      if (seen.insert(e).second) inst->base.push_back(e);
    }
  }

  auto fresh_edges = [&](size_t count) {
    std::vector<raqlet::Tuple> out;
    while (out.size() < count) {
      Edge e{pick(rng), pick(rng)};
      if (seen.insert(e).second) out.push_back(ToTuple(e));
    }
    return out;
  };

  // Headline delta: 1% of the base, adds only.
  size_t one_percent = std::max<size_t>(1, inst->base.size() / 100);
  raqlet::RelationDelta adds{"edge", fresh_edges(one_percent), {}};
  inst->inserts_undo.relations.push_back({"edge", {}, adds.adds});
  inst->inserts.relations.push_back(std::move(adds));

  // Mixed churn: ~1% of the base, half removals of evenly spaced existing
  // edges, half fresh insertions.
  size_t half = std::max<size_t>(1, inst->base.size() / 200);
  raqlet::RelationDelta fwd{"edge", fresh_edges(half), {}};
  for (size_t i = 0; i < half; ++i) {
    fwd.removes.push_back(ToTuple(inst->base[i * (inst->base.size() / half)]));
  }
  raqlet::RelationDelta rev{"edge", fwd.removes, fwd.adds};
  inst->churn.relations.push_back(std::move(fwd));
  inst->churn_inverse.relations.push_back(std::move(rev));

  AddEdgeRelation(&inst->db);
  raqlet::Relation* rel = *inst->db.GetRelation("edge");
  for (const Edge& e : inst->base) rel->Insert(ToTuple(e));
  inst->full_eval_ms = MedianOfThreeFullEvalsMs(inst->program, &inst->db);

  cache.emplace(nodes, inst);
  return *inst;
}

void ReportSpeedup(benchmark::State& state, double full_eval_ms,
                   double deltas_per_iteration) {
  state.counters["full_eval_ms"] = benchmark::Counter(full_eval_ms);
  // An iteration-invariant rate reports value·iterations/elapsed: with
  // value = full-eval seconds × deltas per iteration, that is full-eval
  // time divided by the measured per-delta maintenance time — the speedup.
  state.counters["speedup_vs_full"] = benchmark::Counter(
      full_eval_ms * 1e-3 * deltas_per_iteration,
      benchmark::Counter::kIsIterationInvariantRate);
}

// Headline: 1% insert-only delta (the streaming-append shape). The view
// re-initializes untimed each iteration; only ApplyDelta is measured.
void BM_IncrementalDelta(benchmark::State& state) {
  Instance& inst = GetInstance(static_cast<int>(state.range(0)));
  raqlet::engine::IncrementalOptions options;
  options.num_threads = static_cast<int>(state.range(1));
  raqlet::engine::IncrementalView view(options);
  for (auto _ : state) {
    if (!view.Initialize(inst.program, &inst.db).ok()) std::abort();
    auto t0 = std::chrono::steady_clock::now();
    auto applied = view.ApplyDelta(inst.inserts);
    auto t1 = std::chrono::steady_clock::now();
    if (!applied.ok()) state.SkipWithError(applied.status().ToString().c_str());
    benchmark::DoNotOptimize(applied);
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());
    // Base-level revert; the next Initialize rebuilds the derived view.
    if (!inst.db.ApplyDelta(inst.inserts_undo).ok()) std::abort();
  }
  state.counters["delta_ops"] = benchmark::Counter(
      static_cast<double>(inst.inserts.relations[0].adds.size()));
  state.counters["base_edges"] =
      benchmark::Counter(static_cast<double>(inst.base.size()));
  ReportSpeedup(state, inst.full_eval_ms, 1);
  state.SetLabel("TC maintenance, 1% insert-only delta, vs from-scratch");
}

// Adversarial: mixed add/remove churn inside a strongly connected closure.
// One iteration = churn + exact inverse (two deltas, state restored), so
// wall time per iteration is 2× the per-delta cost of the DRed path.
void BM_IncrementalMixedChurn(benchmark::State& state) {
  Instance& inst = GetInstance(static_cast<int>(state.range(0)));
  raqlet::engine::IncrementalOptions options;
  options.num_threads = static_cast<int>(state.range(1));
  raqlet::engine::IncrementalView view(options);
  if (!view.Initialize(inst.program, &inst.db).ok()) std::abort();
  for (auto _ : state) {
    auto fwd = view.ApplyDelta(inst.churn);
    if (!fwd.ok()) state.SkipWithError(fwd.status().ToString().c_str());
    auto rev = view.ApplyDelta(inst.churn_inverse);
    if (!rev.ok()) state.SkipWithError(rev.status().ToString().c_str());
    benchmark::DoNotOptimize(fwd);
    benchmark::DoNotOptimize(rev);
  }
  state.counters["delta_ops"] = benchmark::Counter(
      static_cast<double>(inst.churn.relations[0].adds.size() +
                          inst.churn.relations[0].removes.size()));
  state.counters["base_edges"] =
      benchmark::Counter(static_cast<double>(inst.base.size()));
  ReportSpeedup(state, inst.full_eval_ms, 2);
  state.SetLabel(
      "TC maintenance, mixed churn (DRed bails out to recompute-and-diff)");
}

struct KnowsInstance {
  raqlet::Compiler compiler;
  raqlet::Database db;
  raqlet::dlir::Program program;
  raqlet::DeltaBatch inserts;
  raqlet::DeltaBatch inserts_undo;
  size_t base_edges = 0;
  double full_eval_ms = 0;
};

KnowsInstance& GetKnowsInstance() {
  static KnowsInstance* inst = nullptr;
  if (inst != nullptr) return *inst;
  inst = new KnowsInstance();
  if (!inst->compiler.LoadPgSchema(raqlet::ldbc::SnbSchema()).ok()) {
    std::abort();
  }
  if (!inst->compiler.CreateEdbs(&inst->db).ok()) std::abort();
  raqlet::ldbc::GeneratorOptions gen;
  gen.scale_factor = 0.2;
  if (!GenerateSnbData(inst->compiler.dl_schema(), &inst->db, gen).ok()) {
    std::abort();
  }
  auto program = raqlet::dlir::ParseProgram(kKnowsDatalog);
  if (!program.ok()) std::abort();
  inst->program = std::move(program).value();

  raqlet::Relation* knows = *inst->db.GetRelation("Person_KNOWS_Person");
  std::set<Edge> seen;
  for (const raqlet::Tuple& row : knows->MaterializeRows()) {
    seen.insert({row[0].AsNumber(), row[1].AsNumber()});
  }
  inst->base_edges = seen.size();

  std::mt19937 rng(1234);
  std::uniform_int_distribution<int64_t> pick(1, gen.persons());
  raqlet::RelationDelta adds{"Person_KNOWS_Person", {}, {}};
  int64_t next_id = 1000000000;
  size_t one_percent = std::max<size_t>(1, inst->base_edges / 100);
  while (adds.adds.size() < one_percent) {
    Edge e{pick(rng), pick(rng)};
    if (e.first == e.second || !seen.insert(e).second) continue;
    adds.adds.push_back(
        {raqlet::Value::Number(e.first), raqlet::Value::Number(e.second),
         raqlet::Value::Number(++next_id), raqlet::Value::Number(20260101)});
  }
  inst->inserts_undo.relations.push_back(
      {"Person_KNOWS_Person", {}, adds.adds});
  inst->inserts.relations.push_back(std::move(adds));

  inst->full_eval_ms = MedianOfThreeFullEvalsMs(inst->program, &inst->db);
  return *inst;
}

// Headline shape on the SNB generator's KNOWS graph (heavy-tailed
// degrees): 1% insert-only delta, view re-initialized untimed.
void BM_IncrementalKnowsDelta(benchmark::State& state) {
  KnowsInstance& inst = GetKnowsInstance();
  raqlet::engine::IncrementalOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  raqlet::engine::IncrementalView view(options);
  for (auto _ : state) {
    if (!view.Initialize(inst.program, &inst.db).ok()) std::abort();
    auto t0 = std::chrono::steady_clock::now();
    auto applied = view.ApplyDelta(inst.inserts);
    auto t1 = std::chrono::steady_clock::now();
    if (!applied.ok()) state.SkipWithError(applied.status().ToString().c_str());
    benchmark::DoNotOptimize(applied);
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());
    if (!inst.db.ApplyDelta(inst.inserts_undo).ok()) std::abort();
  }
  state.counters["delta_ops"] = benchmark::Counter(
      static_cast<double>(inst.inserts.relations[0].adds.size()));
  state.counters["base_edges"] =
      benchmark::Counter(static_cast<double>(inst.base_edges));
  ReportSpeedup(state, inst.full_eval_ms, 1);
  state.SetLabel("KNOWS reachability, 1% insert-only delta, vs from-scratch");
}

BENCHMARK(BM_IncrementalDelta)
    ->ArgNames({"nodes", "threads"})
    ->Args({300, 1})
    ->Args({1000, 1})
    ->Args({1000, 4})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IncrementalMixedChurn)
    ->ArgNames({"nodes", "threads"})
    ->Args({300, 1})
    ->Args({1000, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IncrementalKnowsDelta)
    ->ArgNames({"threads"})
    ->Args({1})
    ->Args({4})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
