// §2.3 crossover reproduction: transitive closure across paradigms, as a
// function of graph size. The paper cites Brass & Wenzel [10]: "Soufflé
// ... has been shown to outperform SQLite, PostgreSQL, and Neo4j for
// classic recursive queries like transitive closure". Expected shape: the
// Datalog engine wins, the SQL engine follows, the per-binding graph
// interpreter trails.
//
// Benchmarked on deterministic random graphs (out-degree ~2) at three
// sizes; the arg is the node count.

#include <benchmark/benchmark.h>

#include <chrono>
#include <random>

#include "dlir/parser.h"
#include "obs/trace.h"
#include "raqlet/compiler.h"

namespace {

constexpr char kGraphSchema[] = R"(
CREATE GRAPH {
  (nodeType: Node {id INT}),
  (:nodeType)-[edgeType: connectsTo {id INT}]->(:nodeType)
}
)";

constexpr char kTcDatalog[] = R"(
.decl Node_CONNECTS_TO_Node(id1: number, id2: number, id: number)
.input Node_CONNECTS_TO_Node
.decl tc(x: number, y: number)
.output tc
tc(x, y) :- Node_CONNECTS_TO_Node(x, y, _).
tc(x, y) :- tc(x, z), Node_CONNECTS_TO_Node(z, y, _).
)";

constexpr char kTcCypher[] = R"(
MATCH (a:Node)-[:CONNECTS_TO*]->(b:Node)
RETURN DISTINCT a.id AS src, b.id AS dst
)";

struct Instance {
  raqlet::Compiler compiler;
  raqlet::Database db;
  raqlet::dlir::Program tc_program;
  raqlet::CompiledQuery cypher_unit;
  std::unique_ptr<raqlet::engine::GraphStore> store;
};

Instance& GetInstance(int nodes) {
  static std::map<int, Instance*>& cache = *new std::map<int, Instance*>();
  auto it = cache.find(nodes);
  if (it != cache.end()) return *it->second;

  auto* inst = new Instance();
  if (!inst->compiler.LoadPgSchema(kGraphSchema).ok()) std::abort();
  if (!inst->compiler.CreateEdbs(&inst->db).ok()) std::abort();
  raqlet::Relation* node_rel = *inst->db.GetRelation("Node");
  raqlet::Relation* edge_rel = *inst->db.GetRelation("Node_CONNECTS_TO_Node");
  std::mt19937 rng(1234);
  std::uniform_int_distribution<int> pick(1, nodes);
  for (int i = 1; i <= nodes; ++i) {
    node_rel->Insert({raqlet::Value::Number(i)});
  }
  int edge_id = 0;
  for (int i = 1; i <= nodes; ++i) {
    for (int k = 0; k < 2; ++k) {  // out-degree 2
      edge_rel->Insert({raqlet::Value::Number(i),
                        raqlet::Value::Number(pick(rng)),
                        raqlet::Value::Number(++edge_id)});
    }
  }
  auto program = raqlet::dlir::ParseProgram(kTcDatalog);
  if (!program.ok()) std::abort();
  inst->tc_program = std::move(program).value();
  auto unit = inst->compiler.CompileCypher(kTcCypher, {});
  if (!unit.ok()) std::abort();
  inst->cypher_unit = std::move(unit).value();
  auto store = inst->compiler.BuildGraphStore(inst->db);
  if (!store.ok()) std::abort();
  inst->store = std::make_unique<raqlet::engine::GraphStore>(
      std::move(store).value());
  cache.emplace(nodes, inst);
  return *inst;
}

void BM_TcDatalog(benchmark::State& state) {
  Instance& inst = GetInstance(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    raqlet::engine::DatalogEngine eng;
    raqlet::Status st = eng.Run(inst.tc_program, &inst.db);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetLabel("whole-graph TC, Datalog engine (Soufflé stand-in)");
  // Storage density of the derived closure: heap bytes held by the tc
  // relation (columns + kind sidecars + dedup table) per stored tuple.
  // The columnar layout targets ~24 B/tuple for the 2-column numeric
  // shape (2×8 B payload + amortized dedup slots); the previous boxed-row
  // layout paid ~80 B/tuple before allocator overhead.
  auto tc = inst.db.GetRelation("tc");
  if (tc.ok() && (*tc)->size() > 0) {
    state.counters["tc_rows"] =
        benchmark::Counter(static_cast<double>((*tc)->size()));
    state.counters["bytes_per_tuple"] = benchmark::Counter(
        static_cast<double>((*tc)->MemoryBytes()) /
        static_cast<double>((*tc)->size()));
  }
}

void BM_TcSql(benchmark::State& state) {
  Instance& inst = GetInstance(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto result = inst.compiler.RunOnSql(inst.tc_program, &inst.db,
                                         raqlet::engine::SqlMode::kVectorized);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("whole-graph TC, SQL engine WITH RECURSIVE (DuckDB stand-in)");
}

void BM_TcSqlTuple(benchmark::State& state) {
  Instance& inst = GetInstance(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto result = inst.compiler.RunOnSql(
        inst.tc_program, &inst.db, raqlet::engine::SqlMode::kTuplePipeline);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("whole-graph TC, SQL engine tuple mode (HyPer stand-in)");
}

// The vectorized batch pipeline with its leading scan partitioned across
// the runtime's thread pool (1 thread = the serial BM_TcSql path plus
// plumbing; >1 measures multicore scaling — results are bit-identical).
void BM_TcSqlParallel(benchmark::State& state) {
  Instance& inst = GetInstance(static_cast<int>(state.range(0)));
  const int threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    auto result = inst.compiler.RunOnSql(inst.tc_program, &inst.db,
                                         raqlet::engine::SqlMode::kVectorized,
                                         nullptr, threads);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("whole-graph TC, SQL vectorized, batches across threads");
}

// Default column-batch binding table (gathered expansions, batch DISTINCT).
void BM_TcGraph(benchmark::State& state) {
  Instance& inst = GetInstance(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto result =
        inst.compiler.RunOnGraph(inst.cypher_unit.pgir, *inst.store, &inst.db);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("whole-graph TC, graph engine BFS (Neo4j stand-in)");
}

// The historical per-binding row interpreter (the paper's critique target);
// results are bit-identical to BM_TcGraph, only the binding-table
// representation differs.
void BM_TcGraphRows(benchmark::State& state) {
  Instance& inst = GetInstance(static_cast<int>(state.range(0)));
  raqlet::engine::GraphOptions options;
  options.mode = raqlet::engine::GraphMode::kRowBinding;
  for (auto _ : state) {
    auto result = inst.compiler.RunOnGraph(inst.cypher_unit.pgir, *inst.store,
                                           &inst.db, nullptr, options);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("whole-graph TC, graph engine, per-binding row interpreter");
}

// Tracing-overhead harness: each iteration runs the Datalog closure once
// untraced and once inside a TraceSession, timing both (the pairing
// cancels machine drift). `trace_overhead_ratio` is traced/untraced wall
// time — the cost of span recording on the hot path, expected near 1.0 —
// and `trace_events` is the spans one run emits. Named outside the
// BM_TcDatalog|BM_TcSql|BM_TcGraph baseline-gate filter on purpose: the
// gated benches prove the *tracing-off* path did not regress; this one
// tracks the tracing-on cost itself.
void BM_TracedTcDatalog(benchmark::State& state) {
  Instance& inst = GetInstance(static_cast<int>(state.range(0)));
  raqlet::engine::DatalogEngine eng;
  using clock = std::chrono::steady_clock;
  double untraced_ns = 0;
  double traced_ns = 0;
  double events = 0;
  for (auto _ : state) {
    auto t0 = clock::now();
    raqlet::Status st = eng.Run(inst.tc_program, &inst.db);
    auto t1 = clock::now();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    {
      raqlet::obs::TraceSession session;
      auto t2 = clock::now();
      st = eng.Run(inst.tc_program, &inst.db);
      auto t3 = clock::now();
      if (!st.ok()) state.SkipWithError(st.ToString().c_str());
      traced_ns += std::chrono::duration<double, std::nano>(t3 - t2).count();
      events = static_cast<double>(session.event_count());
    }
    untraced_ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
  }
  if (untraced_ns > 0) {
    state.counters["trace_overhead_ratio"] =
        benchmark::Counter(traced_ns / untraced_ns);
  }
  state.counters["trace_events"] = benchmark::Counter(events);
  state.SetLabel("whole-graph TC, Datalog engine, tracing on vs off");
}

BENCHMARK(BM_TcDatalog)->Arg(100)->Arg(300)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TracedTcDatalog)->Arg(300)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TcSql)->Arg(100)->Arg(300)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TcSqlTuple)->Arg(100)->Arg(300)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TcSqlParallel)
    ->ArgNames({"nodes", "threads"})
    ->Args({300, 1})
    ->Args({300, 4})
    ->Args({1000, 1})
    ->Args({1000, 4})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TcGraph)->Arg(100)->Arg(300)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TcGraphRows)->Arg(100)->Arg(300)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
