// §2 crossover reproduction: recursive query classes across paradigms.
//
//  * single-source reachability (bound KNOWS*): all engines; the paper's
//    §2.2 claim is that recursive SQL does well on linear recursion
//    without aggregation [20].
//  * shortest-path lengths: graph BFS vs Datalog lattice recursion —
//    recursive SQL is rejected (§4 backend analysis); the paper's §2.1
//    cites graph/RDF systems beating relational stores here [32].
//  * same-generation (non-linear): Datalog engine only, after the
//    linearization rewrite also on the SQL engine (§5 [42]).

#include <benchmark/benchmark.h>

#include "dlir/parser.h"
#include "ldbc/ldbc.h"
#include "opt/passes.h"
#include "raqlet/compiler.h"

namespace {

struct Workload {
  raqlet::Compiler compiler;
  raqlet::Database db;
  std::unique_ptr<raqlet::engine::GraphStore> store;
  raqlet::CompiledQuery reach, shortest, three_hops;

  static Workload& Get() {
    static Workload& w = *new Workload(1.0);
    return w;
  }

  /// Smaller instance for the whole-graph quadratic queries
  /// (same-generation, non-linear TC).
  static Workload& GetSmall() {
    static Workload& w = *new Workload(0.1);
    return w;
  }

 private:
  explicit Workload(double sf) {
    if (!compiler.LoadPgSchema(raqlet::ldbc::SnbSchema()).ok()) std::abort();
    if (!compiler.CreateEdbs(&db).ok()) std::abort();
    raqlet::ldbc::GeneratorOptions gen;
    gen.scale_factor = sf;
    if (!GenerateSnbData(compiler.dl_schema(), &db, gen).ok()) std::abort();

    raqlet::CompileOptions params;
    params.parameters["personId"] =
        raqlet::dlir::Constant::Number(raqlet::ldbc::SamplePersonId(gen));
    params.opt_level = 1;
    auto compile = [&](const char* text) {
      auto unit = compiler.CompileCypher(text, params);
      if (!unit.ok()) std::abort();
      return std::move(unit).value();
    };
    reach = compile(raqlet::ldbc::ReachabilityQuery());
    shortest = compile(raqlet::ldbc::ShortestPathQuery());
    three_hops = compile(raqlet::ldbc::FriendsWithinThreeHops());
    auto built = compiler.BuildGraphStore(db);
    if (!built.ok()) std::abort();
    store = std::make_unique<raqlet::engine::GraphStore>(
        std::move(built).value());
  }
};

const raqlet::CompiledQuery& Query(const std::string& name) {
  Workload& w = Workload::Get();
  if (name == "reach") return w.reach;
  if (name == "shortest") return w.shortest;
  return w.three_hops;
}

void BM_OnGraph(benchmark::State& state, const std::string& name) {
  Workload& w = Workload::Get();
  const auto& unit = Query(name);
  for (auto _ : state) {
    auto result = w.compiler.RunOnGraph(unit.pgir, *w.store, &w.db);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
}

void BM_OnDatalog(benchmark::State& state, const std::string& name) {
  Workload& w = Workload::Get();
  const auto& unit = Query(name);
  for (auto _ : state) {
    auto result = w.compiler.RunOnDatalog(unit.optimized, &w.db);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
}

void BM_OnSql(benchmark::State& state, const std::string& name) {
  Workload& w = Workload::Get();
  const auto& unit = Query(name);
  for (auto _ : state) {
    auto result = w.compiler.RunOnSql(unit.optimized, &w.db);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
}

BENCHMARK_CAPTURE(BM_OnGraph, reachability, "reach")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_OnDatalog, reachability, "reach")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_OnSql, reachability, "reach")->Unit(benchmark::kMillisecond);

BENCHMARK_CAPTURE(BM_OnGraph, shortest_path, "shortest")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_OnDatalog, shortest_path, "shortest")->Unit(benchmark::kMillisecond);
// SQL shortest path intentionally absent: the §4 backend analysis rejects
// lattice recursion for WITH RECURSIVE (see ldbc_test
// ShortestPathSqlRejected).

BENCHMARK_CAPTURE(BM_OnGraph, three_hops, "hops")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_OnDatalog, three_hops, "hops")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_OnSql, three_hops, "hops")->Unit(benchmark::kMillisecond);

// ---- same-generation: non-linear recursion and linearization [42] ----

constexpr char kSameGeneration[] = R"(
.decl Person_KNOWS_Person(id1: number, id2: number, id: number, creationDate: number)
.input Person_KNOWS_Person
.decl hop(x: number, y: number)
.decl sg(x: number, y: number)
.output sg
hop(x, y) :- Person_KNOWS_Person(x, y, _, _).
sg(x, y) :- hop(z, x), hop(z, y).
sg(x, y) :- hop(xp, x), sg(xp, yp), hop(yp, y).
)";

void BM_SameGenerationDatalog(benchmark::State& state) {
  Workload& w = Workload::GetSmall();
  auto program = raqlet::dlir::ParseProgram(kSameGeneration);
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto result = w.compiler.RunOnDatalog(*program, &w.db);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("same-generation over KNOWS (linear recursion)");
}

// Non-linear TC is rejected by the SQL backend until linearized (§5).
constexpr char kNonLinearTc[] = R"(
.decl Person_KNOWS_Person(id1: number, id2: number, id: number, creationDate: number)
.input Person_KNOWS_Person
.decl tc(x: number, y: number)
.output tc
tc(x, y) :- Person_KNOWS_Person(x, y, _, _).
tc(x, y) :- tc(x, z), tc(z, y).
)";

void BM_NonLinearTcDatalog(benchmark::State& state) {
  Workload& w = Workload::GetSmall();
  auto program = raqlet::dlir::ParseProgram(kNonLinearTc);
  for (auto _ : state) {
    auto result = w.compiler.RunOnDatalog(*program, &w.db);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("non-linear TC on Datalog engine (SQL would reject)");
}

void BM_LinearizedTcSql(benchmark::State& state) {
  Workload& w = Workload::GetSmall();
  auto program = raqlet::dlir::ParseProgram(kNonLinearTc);
  auto linear = raqlet::opt::LinearizeRecursion(*program);
  if (!linear.ok()) {
    state.SkipWithError(linear.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto result = w.compiler.RunOnSql(*linear, &w.db);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("linearized TC on SQL engine (enabled by the §5 rewrite)");
}

BENCHMARK(BM_SameGenerationDatalog)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NonLinearTcDatalog)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LinearizedTcSql)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
