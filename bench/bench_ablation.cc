// Optimizer ablation (the per-pass benches DESIGN.md's experiment index
// calls out): contribution of each §5 pass on the Table 1 queries, the
// magic-set transformation on bound recursion, and engine-level ablations
// (semi-naive vs naive evaluation, greedy vs written join order).

#include <benchmark/benchmark.h>

#include "dlir/parser.h"
#include "ldbc/ldbc.h"
#include "opt/pass_manager.h"
#include "raqlet/compiler.h"

namespace {

struct Workload {
  raqlet::Compiler compiler;
  raqlet::Database db;
  raqlet::CompiledQuery cq2_raw;   // unoptimized DLIR
  raqlet::CompiledQuery reach_raw;

  static Workload& Get() {
    static Workload& w = *new Workload(1.0);
    return w;
  }

  /// Smaller instance for whole-graph TC engine ablations (naive
  /// evaluation on SF 1 would dominate the suite's runtime).
  static Workload& GetSmall() {
    static Workload& w = *new Workload(0.15);
    return w;
  }

 private:
  explicit Workload(double sf) {
    if (!compiler.LoadPgSchema(raqlet::ldbc::SnbSchema()).ok()) std::abort();
    if (!compiler.CreateEdbs(&db).ok()) std::abort();
    raqlet::ldbc::GeneratorOptions gen;
    gen.scale_factor = sf;
    if (!GenerateSnbData(compiler.dl_schema(), &db, gen).ok()) std::abort();
    raqlet::CompileOptions params;
    params.parameters["personId"] =
        raqlet::dlir::Constant::Number(raqlet::ldbc::SamplePersonId(gen));
    params.parameters["maxDate"] =
        raqlet::dlir::Constant::Number(raqlet::ldbc::MidCreationDate());
    params.opt_level = 0;
    auto compile = [&](const char* text) {
      auto unit = compiler.CompileCypher(text, params);
      if (!unit.ok()) std::abort();
      return std::move(unit).value();
    };
    cq2_raw = compile(raqlet::ldbc::ComplexQuery2());
    reach_raw = compile(raqlet::ldbc::ReachabilityQuery());
  }
};

raqlet::dlir::Program WithPasses(const raqlet::dlir::Program& program,
                                 std::initializer_list<const char*> passes) {
  raqlet::opt::PassManager pm;
  for (const char* pass : passes) {
    if (!pm.Add(pass).ok()) std::abort();
  }
  auto out = pm.Run(program);
  if (!out.ok()) std::abort();
  return std::move(out).value();
}

void RunDatalog(benchmark::State& state, const raqlet::dlir::Program& program,
                const char* label) {
  Workload& w = Workload::Get();
  for (auto _ : state) {
    auto result = w.compiler.RunOnDatalog(program, &w.db);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(label);
}

// ---- pass-by-pass on CQ2 (Fig. 4's inlining/DRE plus pushdown) ----

void BM_Cq2_NoOpt(benchmark::State& state) {
  RunDatalog(state, Workload::Get().cq2_raw.dlir, "CQ2, no optimization");
}
void BM_Cq2_InlineOnly(benchmark::State& state) {
  RunDatalog(state, WithPasses(Workload::Get().cq2_raw.dlir, {"inline"}),
             "CQ2, inlining only (Fig. 4a)");
}
void BM_Cq2_InlineDre(benchmark::State& state) {
  RunDatalog(state,
             WithPasses(Workload::Get().cq2_raw.dlir, {"inline", "dre"}),
             "CQ2, inlining + dead rule elimination (Fig. 4b)");
}
void BM_Cq2_InlineDrePushdown(benchmark::State& state) {
  RunDatalog(state, WithPasses(Workload::Get().cq2_raw.dlir,
                               {"inline", "pushdown", "dre"}),
             "CQ2, + constant pushdown");
}
void BM_Cq2_FullStandard(benchmark::State& state) {
  RunDatalog(state, WithPasses(Workload::Get().cq2_raw.dlir,
                               {"inline", "pushdown", "self-join-elim",
                                "dedup-atoms", "dre"}),
             "CQ2, full Standard pipeline (Table 1 'optimized')");
}

BENCHMARK(BM_Cq2_NoOpt)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Cq2_InlineOnly)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Cq2_InlineDre)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Cq2_InlineDrePushdown)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Cq2_FullStandard)->Unit(benchmark::kMillisecond);

// ---- magic sets on bound reachability ----

void BM_Reach_Standard(benchmark::State& state) {
  RunDatalog(state,
             WithPasses(Workload::Get().reach_raw.dlir,
                        {"inline", "pushdown", "dedup-atoms", "dre"}),
             "bound KNOWS*, Standard (whole-graph closure)");
}
void BM_Reach_MagicSets(benchmark::State& state) {
  RunDatalog(state,
             WithPasses(Workload::Get().reach_raw.dlir,
                        {"inline", "pushdown", "dedup-atoms", "dre",
                         "magic-sets", "dre"}),
             "bound KNOWS*, + magic sets (goal-directed)");
}

BENCHMARK(BM_Reach_Standard)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Reach_MagicSets)->Unit(benchmark::kMillisecond);

// ---- engine ablations: semi-naive vs naive, join reordering ----

constexpr char kTc[] = R"(
.decl Person_KNOWS_Person(id1: number, id2: number, id: number, creationDate: number)
.input Person_KNOWS_Person
.decl tc(x: number, y: number)
.output tc
tc(x, y) :- Person_KNOWS_Person(x, y, _, _).
tc(x, y) :- tc(x, z), Person_KNOWS_Person(z, y, _, _).
)";

void BM_Engine_Seminaive(benchmark::State& state) {
  Workload& w = Workload::GetSmall();
  auto program = raqlet::dlir::ParseProgram(kTc);
  raqlet::engine::DatalogEngine eng;
  for (auto _ : state) {
    raqlet::Status st = eng.Run(*program, &w.db);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetLabel("whole-graph TC, semi-naive evaluation");
}

void BM_Engine_Naive(benchmark::State& state) {
  Workload& w = Workload::GetSmall();
  auto program = raqlet::dlir::ParseProgram(kTc);
  raqlet::engine::EvalOptions options;
  options.seminaive = false;
  raqlet::engine::DatalogEngine eng(options);
  for (auto _ : state) {
    raqlet::Status st = eng.Run(*program, &w.db);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetLabel("whole-graph TC, naive evaluation");
}

void BM_Engine_NoReorder(benchmark::State& state) {
  Workload& w = Workload::Get();
  auto program = WithPasses(Workload::Get().cq2_raw.dlir, {"inline", "dre"});
  raqlet::engine::EvalOptions options;
  options.reorder_atoms = false;
  raqlet::engine::DatalogEngine eng(options);
  for (auto _ : state) {
    raqlet::Status st = eng.Run(program, &w.db);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetLabel("CQ2 inlined, greedy join ordering OFF");
}

BENCHMARK(BM_Engine_Seminaive)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Engine_Naive)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Engine_NoReorder)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
