// Parallel evaluation runtime scaling: the same semi-naive plans at
// 1/2/4/8 threads. Two workload shapes:
//
//  * BM_TcParallel — whole-graph transitive closure on a random graph
//    (out-degree 2), the ROADMAP's canonical recursive benchmark. One big
//    recursive SCC: all the speedup comes from partitioned delta joins.
//  * BM_LdbcReachParallel — LDBC SNB-shaped: person-to-person reachability
//    over the generated KNOWS graph plus independent non-recursive strata
//    (city rollup, message fanout), so the SCC scheduler also overlaps
//    whole strata.
//
// The 1-thread rows are the serial baseline (no pool is created); results
// are bit-identical across thread counts by construction — see
// tests/parallel_engine_test.cc.

#include <benchmark/benchmark.h>

#include <map>
#include <random>

#include "dlir/parser.h"
#include "ldbc/ldbc.h"
#include "raqlet/compiler.h"

namespace {

constexpr char kGraphSchema[] = R"(
CREATE GRAPH {
  (nodeType: Node {id INT}),
  (:nodeType)-[edgeType: connectsTo {id INT}]->(:nodeType)
}
)";

constexpr char kTcDatalog[] = R"(
.decl Node_CONNECTS_TO_Node(id1: number, id2: number, id: number)
.input Node_CONNECTS_TO_Node
.decl tc(x: number, y: number)
.output tc
tc(x, y) :- Node_CONNECTS_TO_Node(x, y, _).
tc(x, y) :- tc(x, z), Node_CONNECTS_TO_Node(z, y, _).
)";

// KNOWS reachability (the recursive SCC) next to two independent
// non-recursive strata over other parts of the SNB graph.
constexpr char kLdbcReachDatalog[] = R"(
.decl Person_KNOWS_Person(a: number, b: number, id: number, date: number)
.input Person_KNOWS_Person
.decl Person_IS_LOCATED_IN_City(p: number, c: number, id: number)
.input Person_IS_LOCATED_IN_City
.decl Message_HAS_CREATOR_Person(m: number, p: number, id: number)
.input Message_HAS_CREATOR_Person
.decl reach(x: number, y: number)
reach(x, y) :- Person_KNOWS_Person(x, y, _, _).
reach(x, y) :- reach(x, z), Person_KNOWS_Person(z, y, _, _).
.decl city_pop(c: number, n: number)
city_pop(c, count()) :- Person_IS_LOCATED_IN_City(p, c, _).
.decl msg_fanout(p: number, n: number)
msg_fanout(p, count()) :- Message_HAS_CREATOR_Person(m, p, _).
.decl reach_city(x: number, c: number)
.output reach_city
reach_city(x, c) :- reach(x, y), Person_IS_LOCATED_IN_City(y, c, _).
)";

struct TcInstance {
  raqlet::Database db;
  raqlet::dlir::Program program;
};

TcInstance& GetTcInstance(int nodes) {
  static std::map<int, TcInstance*>& cache = *new std::map<int, TcInstance*>();
  auto it = cache.find(nodes);
  if (it != cache.end()) return *it->second;

  auto* inst = new TcInstance();
  raqlet::Compiler compiler;
  if (!compiler.LoadPgSchema(kGraphSchema).ok()) std::abort();
  if (!compiler.CreateEdbs(&inst->db).ok()) std::abort();
  raqlet::Relation* edge_rel = *inst->db.GetRelation("Node_CONNECTS_TO_Node");
  std::mt19937 rng(1234);
  std::uniform_int_distribution<int> pick(1, nodes);
  int edge_id = 0;
  for (int i = 1; i <= nodes; ++i) {
    for (int k = 0; k < 2; ++k) {  // out-degree 2
      edge_rel->Insert({raqlet::Value::Number(i),
                        raqlet::Value::Number(pick(rng)),
                        raqlet::Value::Number(++edge_id)});
    }
  }
  auto program = raqlet::dlir::ParseProgram(kTcDatalog);
  if (!program.ok()) std::abort();
  inst->program = std::move(program).value();
  cache.emplace(nodes, inst);
  return *inst;
}

struct LdbcInstance {
  raqlet::Database db;
  raqlet::dlir::Program program;
};

LdbcInstance& GetLdbcInstance() {
  static LdbcInstance* inst = [] {
    auto* created = new LdbcInstance();
    raqlet::Compiler compiler;
    if (!compiler.LoadPgSchema(raqlet::ldbc::SnbSchema()).ok()) std::abort();
    if (!compiler.CreateEdbs(&created->db).ok()) std::abort();
    raqlet::ldbc::GeneratorOptions gen;
    gen.scale_factor = 0.3;
    if (!GenerateSnbData(compiler.dl_schema(), &created->db, gen).ok()) {
      std::abort();
    }
    auto program = raqlet::dlir::ParseProgram(kLdbcReachDatalog);
    if (!program.ok()) std::abort();
    created->program = std::move(program).value();
    return created;
  }();
  return *inst;
}

void RunWithThreads(benchmark::State& state, const raqlet::dlir::Program& program,
                    raqlet::Database* db, int threads) {
  raqlet::engine::EvalOptions options;
  options.num_threads = threads;
  // Engine (and its pool) outlives the timing loop: steady-state cost.
  raqlet::engine::DatalogEngine engine(options);
  size_t derived = 0;
  for (auto _ : state) {
    raqlet::engine::EvalStats stats;
    raqlet::Status st = engine.Run(program, db, &stats);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    derived = stats.tuples_inserted;
  }
  state.counters["tuples"] =
      benchmark::Counter(static_cast<double>(derived));
  state.counters["threads"] =
      benchmark::Counter(static_cast<double>(threads));
}

void BM_TcParallel(benchmark::State& state) {
  TcInstance& inst = GetTcInstance(static_cast<int>(state.range(0)));
  RunWithThreads(state, inst.program, &inst.db,
                 static_cast<int>(state.range(1)));
  state.SetLabel("whole-graph TC, Datalog engine, partitioned delta joins");
}

void BM_LdbcReachParallel(benchmark::State& state) {
  LdbcInstance& inst = GetLdbcInstance();
  RunWithThreads(state, inst.program, &inst.db,
                 static_cast<int>(state.range(0)));
  state.SetLabel("LDBC SNB KNOWS-reachability + independent strata");
}

}  // namespace

BENCHMARK(BM_TcParallel)
    ->ArgsProduct({{300, 1000, 2000}, {1, 2, 4, 8}})
    ->ArgNames({"nodes", "threads"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LdbcReachParallel)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
