// Table 1 reproduction: execution time for LDBC short query 1 (SQ1) and
// complex query 2 (CQ2), unoptimized vs fully optimized, across the four
// engine configurations standing in for the paper's systems:
//
//   paper          this repo
//   ------         ------------------------------------------
//   Neo4j          graph engine (PGIR traversal)   [unopt only — it runs
//                  the original Cypher, as in the paper]
//   Soufflé        Datalog engine (semi-naive bottom-up)
//   DuckDB         SQL engine, vectorized mode
//   HyPer          SQL engine, tuple-pipeline mode
//
// The expected *shape* (who wins, what optimization buys) is recorded in
// EXPERIMENTS.md. Scale factor defaults to 1.0 (RAQLET_SF env overrides).

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>

#include "ldbc/ldbc.h"
#include "raqlet/compiler.h"

#define RAQLET_CHECK(expr)                                    \
  do {                                                        \
    ::raqlet::Status _st = (expr);                            \
    if (!_st.ok()) {                                          \
      std::fprintf(stderr, "%s\n", _st.ToString().c_str());   \
      std::abort();                                           \
    }                                                         \
  } while (false)

namespace {

using raqlet::CompileOptions;
using raqlet::CompiledQuery;
using raqlet::Compiler;
using raqlet::Database;

double ScaleFactor() {
  const char* env = std::getenv("RAQLET_SF");
  return env != nullptr ? std::atof(env) : 1.0;
}

// Shared workload, built once.
struct Workload {
  Compiler compiler;
  Database db;
  CompiledQuery sq1_unopt, sq1_opt, cq2_unopt, cq2_opt;
  std::unique_ptr<raqlet::engine::GraphStore> store;

  static Workload& Get() {
    static Workload& instance = *new Workload();
    return instance;
  }

 private:
  Workload() {
    RAQLET_CHECK(compiler.LoadPgSchema(raqlet::ldbc::SnbSchema()));
    RAQLET_CHECK(compiler.CreateEdbs(&db));
    raqlet::ldbc::GeneratorOptions gen;
    gen.scale_factor = ScaleFactor();
    RAQLET_CHECK(GenerateSnbData(compiler.dl_schema(), &db, gen));

    CompileOptions params;
    params.parameters["personId"] =
        raqlet::dlir::Constant::Number(raqlet::ldbc::SamplePersonId(gen));
    params.parameters["maxDate"] =
        raqlet::dlir::Constant::Number(raqlet::ldbc::MidCreationDate());

    params.opt_level = 0;
    sq1_unopt = Compile(raqlet::ldbc::ShortQuery1(), params);
    cq2_unopt = Compile(raqlet::ldbc::ComplexQuery2(), params);
    params.opt_level = 1;
    sq1_opt = Compile(raqlet::ldbc::ShortQuery1(), params);
    cq2_opt = Compile(raqlet::ldbc::ComplexQuery2(), params);
    auto built = compiler.BuildGraphStore(db);
    if (!built.ok()) std::abort();
    store = std::make_unique<raqlet::engine::GraphStore>(
        std::move(built).value());
  }

  CompiledQuery Compile(const char* text, const CompileOptions& options) {
    auto unit = compiler.CompileCypher(text, options);
    if (!unit.ok()) {
      std::fprintf(stderr, "compile failed: %s\n",
                   unit.status().ToString().c_str());
      std::abort();
    }
    return std::move(unit).value();
  }
};

const CompiledQuery& Unit(const std::string& query, bool optimized) {
  Workload& w = Workload::Get();
  if (query == "SQ1") return optimized ? w.sq1_opt : w.sq1_unopt;
  return optimized ? w.cq2_opt : w.cq2_unopt;
}

void CheckOk(const raqlet::Status& status, benchmark::State& state) {
  if (!status.ok()) state.SkipWithError(status.ToString().c_str());
}

void BM_Graph(benchmark::State& state, const std::string& query) {
  Workload& w = Workload::Get();
  const CompiledQuery& unit = Unit(query, /*optimized=*/false);
  for (auto _ : state) {
    auto result = w.compiler.RunOnGraph(unit.pgir, *w.store, &w.db);
    CheckOk(result.status(), state);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(query + " on graph engine (Neo4j stand-in, original Cypher)");
}

void BM_Datalog(benchmark::State& state, const std::string& query,
                bool optimized) {
  Workload& w = Workload::Get();
  const CompiledQuery& unit = Unit(query, optimized);
  for (auto _ : state) {
    auto result = w.compiler.RunOnDatalog(unit.optimized, &w.db);
    CheckOk(result.status(), state);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(query + (optimized ? " optimized" : " unoptimized") +
                 " on Datalog engine (Soufflé stand-in)");
}

void BM_Sql(benchmark::State& state, const std::string& query, bool optimized,
            raqlet::engine::SqlMode mode) {
  Workload& w = Workload::Get();
  const CompiledQuery& unit = Unit(query, optimized);
  for (auto _ : state) {
    auto result = w.compiler.RunOnSql(unit.optimized, &w.db, mode);
    CheckOk(result.status(), state);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(query + (optimized ? " optimized" : " unoptimized") +
                 (mode == raqlet::engine::SqlMode::kVectorized
                      ? " on SQL engine, vectorized (DuckDB stand-in)"
                      : " on SQL engine, tuple pipeline (HyPer stand-in)"));
}

// Vectorized SQL with batch partitioning across the runtime's thread pool
// (no Table-1 analogue; tracks what multicore buys the DuckDB stand-in).
void BM_SqlThreads(benchmark::State& state, const std::string& query,
                   int threads) {
  Workload& w = Workload::Get();
  const CompiledQuery& unit = Unit(query, /*optimized=*/true);
  for (auto _ : state) {
    auto result =
        w.compiler.RunOnSql(unit.optimized, &w.db,
                            raqlet::engine::SqlMode::kVectorized, nullptr,
                            threads);
    CheckOk(result.status(), state);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(query + " optimized on SQL engine, vectorized, " +
                 std::to_string(threads) + " threads");
}

#define ROW(query)                                                          \
  BENCHMARK_CAPTURE(BM_Graph, query##_neo4j, #query)                        \
      ->Unit(benchmark::kMillisecond);                                      \
  BENCHMARK_CAPTURE(BM_Datalog, query##_souffle_unopt, #query, false)       \
      ->Unit(benchmark::kMillisecond);                                      \
  BENCHMARK_CAPTURE(BM_Datalog, query##_souffle_opt, #query, true)          \
      ->Unit(benchmark::kMillisecond);                                      \
  BENCHMARK_CAPTURE(BM_Sql, query##_duckdb_unopt, #query, false,            \
                    raqlet::engine::SqlMode::kVectorized)                   \
      ->Unit(benchmark::kMillisecond);                                      \
  BENCHMARK_CAPTURE(BM_Sql, query##_duckdb_opt, #query, true,               \
                    raqlet::engine::SqlMode::kVectorized)                   \
      ->Unit(benchmark::kMillisecond);                                      \
  BENCHMARK_CAPTURE(BM_Sql, query##_hyper_unopt, #query, false,             \
                    raqlet::engine::SqlMode::kTuplePipeline)                \
      ->Unit(benchmark::kMillisecond);                                      \
  BENCHMARK_CAPTURE(BM_Sql, query##_hyper_opt, #query, true,                \
                    raqlet::engine::SqlMode::kTuplePipeline)                \
      ->Unit(benchmark::kMillisecond)

ROW(SQ1);
ROW(CQ2);

BENCHMARK_CAPTURE(BM_SqlThreads, SQ1_duckdb_opt_4threads, "SQ1", 4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SqlThreads, CQ2_duckdb_opt_4threads, "CQ2", 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
